// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§6). Each benchmark regenerates its artifact at quick
// scale and prints the same rows/series the paper reports; ReportMetric
// carries the headline number where one exists. Run:
//
//	go test -bench=. -benchmem
//
// For paper-sized runs use: go run ./cmd/optimus-bench -exp all -full
package optimus_test

import (
	"os"
	"strconv"
	"testing"

	"optimus/internal/ccip"
	"optimus/internal/exp"
	"optimus/internal/mem"
)

// benchTable runs an experiment once per iteration and renders its tables
// on the first iteration.
func benchTable(b *testing.B, run func() ([]*exp.Table, error)) []*exp.Table {
	b.Helper()
	var tables []*exp.Table
	for i := 0; i < b.N; i++ {
		ts, err := run()
		if err != nil {
			b.Fatal(err)
		}
		tables = ts
	}
	for _, t := range tables {
		t.Render(os.Stdout)
	}
	return tables
}

// cell parses a numeric table cell like "90.1" or "3.75x". A malformed cell
// fails the benchmark — a silently-zero metric would mask a broken table.
func cell(tb testing.TB, t *exp.Table, row, col int) float64 {
	tb.Helper()
	s := t.Rows[row][col]
	if n := len(s); n > 0 && (s[n-1] == 'x' || s[n-1] == '%') {
		s = s[:n-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		tb.Fatalf("table cell [%d][%d] = %q is not numeric: %v", row, col, t.Rows[row][col], err)
	}
	return v
}

// BenchmarkFig1SSSP regenerates Figure 1: SSSP under shared-memory vs
// host-centric (+Config/+Copy), native and virtualized.
func BenchmarkFig1SSSP(b *testing.B) {
	ts := benchTable(b, func() ([]*exp.Table, error) {
		t, err := exp.Fig1(exp.ScaleQuick)
		return []*exp.Table{t}, err
	})
	// Headline: host-centric+Config / shared-memory at the largest size.
	t := ts[0]
	last := len(t.Rows) - 1
	b.ReportMetric(cell(b, t, last, 2)/cell(b, t, last, 1), "hcConfig/sharedMem")
}

// BenchmarkTable2Resources regenerates Table 2: per-component FPGA
// utilization under pass-through vs OPTIMUS.
func BenchmarkTable2Resources(b *testing.B) {
	ts := benchTable(b, func() ([]*exp.Table, error) {
		t, err := exp.Table2()
		return []*exp.Table{t}, err
	})
	b.ReportMetric(cell(b, ts[0], 1, 1), "monitorALMpct")
}

// BenchmarkFig4Latency regenerates Figure 4a: LinkedList latency overhead
// vs pass-through on UPI and PCIe.
func BenchmarkFig4Latency(b *testing.B) {
	ts := benchTable(b, func() ([]*exp.Table, error) {
		t, err := exp.Fig4a(exp.ScaleQuick)
		return []*exp.Table{t}, err
	})
	b.ReportMetric(cell(b, ts[0], 0, 3), "UPIpct")
	b.ReportMetric(cell(b, ts[0], 1, 3), "PCIepct")
}

// BenchmarkFig4Throughput regenerates Figure 4b: per-benchmark throughput
// under OPTIMUS normalized to pass-through.
func BenchmarkFig4Throughput(b *testing.B) {
	ts := benchTable(b, func() ([]*exp.Table, error) {
		t, err := exp.Fig4b(exp.ScaleQuick)
		return []*exp.Table{t}, err
	})
	b.ReportMetric(cell(b, ts[0], 0, 3), "membenchPct")
}

// BenchmarkFig5LLLatency regenerates Figure 5: LinkedList latency vs
// working set and job count (2M pages on UPI; the bench keeps one variant,
// optimus-bench runs all four).
func BenchmarkFig5LLLatency(b *testing.B) {
	benchTable(b, func() ([]*exp.Table, error) {
		t, err := exp.Fig5(mem.PageSize2M, ccip.VCUPI, exp.ScaleQuick)
		return []*exp.Table{t}, err
	})
}

// BenchmarkFig5LLLatency4K regenerates Figure 5b (4K pages).
func BenchmarkFig5LLLatency4K(b *testing.B) {
	benchTable(b, func() ([]*exp.Table, error) {
		t, err := exp.Fig5(mem.PageSize4K, ccip.VCUPI, exp.ScaleQuick)
		return []*exp.Table{t}, err
	})
}

// BenchmarkFig6MBThroughput regenerates Figure 6: MemBench aggregate
// random-read throughput vs working set and job count (2M pages).
func BenchmarkFig6MBThroughput(b *testing.B) {
	benchTable(b, func() ([]*exp.Table, error) {
		t, err := exp.Fig6(mem.PageSize2M, false, exp.ScaleQuick)
		return []*exp.Table{t}, err
	})
}

// BenchmarkFig6MBThroughput4K regenerates Figure 6b (4K pages, reads).
func BenchmarkFig6MBThroughput4K(b *testing.B) {
	benchTable(b, func() ([]*exp.Table, error) {
		t, err := exp.Fig6(mem.PageSize4K, false, exp.ScaleQuick)
		return []*exp.Table{t}, err
	})
}

// BenchmarkFig6MBWrites regenerates Figure 6's random-write series.
func BenchmarkFig6MBWrites(b *testing.B) {
	benchTable(b, func() ([]*exp.Table, error) {
		t, err := exp.Fig6(mem.PageSize2M, true, exp.ScaleQuick)
		return []*exp.Table{t}, err
	})
}

// BenchmarkFig7Scalability regenerates Figure 7: aggregate throughput of
// the real-world applications vs concurrent job count.
func BenchmarkFig7Scalability(b *testing.B) {
	ts := benchTable(b, func() ([]*exp.Table, error) {
		t, err := exp.Fig7(exp.ScaleQuick)
		return []*exp.Table{t}, err
	})
	// Headline: GAU's 8-job scaling (saturation) vs MD5's (linear).
	t := ts[0]
	for i, row := range t.Rows {
		switch row[0] {
		case "GAU":
			b.ReportMetric(cell(b, t, i, 4), "GAUx8")
		case "MD5":
			b.ReportMetric(cell(b, t, i, 4), "MD5x8")
		}
	}
}

// BenchmarkFig8Temporal regenerates Figure 8: temporal multiplexing
// throughput vs oversubscription factor.
func BenchmarkFig8Temporal(b *testing.B) {
	ts := benchTable(b, func() ([]*exp.Table, error) {
		t, err := exp.Fig8(exp.ScaleQuick)
		return []*exp.Table{t}, err
	})
	b.ReportMetric(cell(b, ts[0], 0, 5), "LL16jobs")
}

// BenchmarkTable3Fairness regenerates Table 3: homogeneous spatial
// multiplexing fairness.
func BenchmarkTable3Fairness(b *testing.B) {
	benchTable(b, func() ([]*exp.Table, error) {
		t, err := exp.Table3(exp.ScaleQuick)
		return []*exp.Table{t}, err
	})
}

// BenchmarkTable4Colocation regenerates Table 4: MemBench co-located with
// each accelerator.
func BenchmarkTable4Colocation(b *testing.B) {
	benchTable(b, func() ([]*exp.Table, error) {
		t, err := exp.Table4(exp.ScaleQuick)
		return []*exp.Table{t}, err
	})
}

// BenchmarkSchedFairness regenerates §6.8: scheduler policy enforcement.
func BenchmarkSchedFairness(b *testing.B) {
	benchTable(b, func() ([]*exp.Table, error) {
		t, err := exp.SchedFairness(exp.ScaleQuick)
		return []*exp.Table{t}, err
	})
}

// BenchmarkTimingAblation regenerates the multiplexer timing-feasibility
// extension (flat vs tree, §7.2).
func BenchmarkTimingAblation(b *testing.B) {
	benchTable(b, func() ([]*exp.Table, error) {
		t, err := exp.TimingAblation()
		return []*exp.Table{t}, err
	})
}
