// SSSP: the paper's motivating pointer-chasing workload (§2.1, Figure 1).
// Runs single-source shortest path on the shared-memory SSSP accelerator,
// compares against the host-centric model's +Config and +Copy drivers, and
// verifies the distances against software Dijkstra.
package main

import (
	"fmt"
	"log"

	"optimus"
	"optimus/internal/accel"
	"optimus/internal/algo/graph"
	"optimus/internal/hostcentric"
	"optimus/internal/sim"
)

func main() {
	const vertices, edges = 20000, 640000
	g := graph.Uniform(vertices, edges, 64, 42)
	fmt.Printf("graph: %d vertices, %d edges\n", vertices, edges)

	// Shared-memory: the accelerator chases the CSR arrays itself.
	smTime, dist := runShared(g)
	fmt.Printf("shared-memory accelerator:  %8.2f ms\n", smTime.Seconds()*1e3)

	// Host-centric baselines: the CPU stages every segment.
	for _, mode := range []hostcentric.Mode{hostcentric.ModeConfig, hostcentric.ModeCopy} {
		k := sim.NewKernel()
		res, err := hostcentric.RunSSSP(k, g, 0, mode, hostcentric.DefaultConfig(false))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %8.2f ms (%d DMA transfers, %d doorbell MMIOs)\n",
			mode.String()+":", res.Elapsed.Seconds()*1e3, res.Transfers, res.MMIOs)
	}

	// Verify against Dijkstra.
	want := graph.Dijkstra(g, 0)
	for v := range want {
		w := uint64(want[v])
		if want[v] == graph.Inf {
			w = accel.SSSPInf
		}
		if dist[v] != w {
			log.Fatalf("dist[%d] = %d, want %d", v, dist[v], w)
		}
	}
	fmt.Println("accelerator distances verified against Dijkstra: OK")
}

// runShared executes the job on the real SSSP accelerator and returns the
// job time and computed distances.
func runShared(g *graph.CSR) (optimus.Time, []uint64) {
	h, err := optimus.New(optimus.Config{Accels: []string{"SSSP"}})
	if err != nil {
		log.Fatal(err)
	}
	vm, _ := h.NewVM("graph-tenant", 10<<30)
	proc := vm.NewProcess()
	va, _ := h.NewVAccel(proc, 0)
	dev, err := optimus.OpenDevice(proc, va)
	if err != nil {
		log.Fatal(err)
	}

	align := func(n uint64) uint64 { return (n + 63) &^ 63 }
	desc, _ := dev.AllocDMA(64)
	rowBuf, _ := dev.AllocDMA(align(uint64(len(g.RowPtr)) * 4))
	colBuf, _ := dev.AllocDMA(align(uint64(len(g.Col)) * 4))
	wBuf, _ := dev.AllocDMA(align(uint64(len(g.Weight)) * 4))
	distBuf, _ := dev.AllocDMA(align(uint64(g.NumVertices) * 8))

	put32 := func(buf optimus.Buffer, vals []uint32) {
		b := make([]byte, align(uint64(len(vals))*4))
		for i, v := range vals {
			b[4*i] = byte(v)
			b[4*i+1] = byte(v >> 8)
			b[4*i+2] = byte(v >> 16)
			b[4*i+3] = byte(v >> 24)
		}
		if err := dev.Write(buf, 0, b); err != nil {
			log.Fatal(err)
		}
	}
	put32(rowBuf, g.RowPtr)
	put32(colBuf, g.Col)
	put32(wBuf, g.Weight)

	distInit := make([]byte, distBuf.Size)
	for v := 0; v < g.NumVertices; v++ {
		val := accel.SSSPInf
		if v == 0 {
			val = 0
		}
		for i := 0; i < 8; i++ {
			distInit[8*v+i] = byte(val >> (8 * i))
		}
	}
	dev.Write(distBuf, 0, distInit)

	descBytes := make([]byte, 64)
	for _, f := range []struct {
		off int
		v   uint64
	}{
		{0x00, uint64(g.NumVertices)}, {0x08, uint64(g.NumEdges())},
		{0x10, uint64(rowBuf.Addr)}, {0x18, uint64(colBuf.Addr)}, {0x20, uint64(wBuf.Addr)},
		{0x28, uint64(distBuf.Addr)}, {0x30, 0},
	} {
		for i := 0; i < 8; i++ {
			descBytes[f.off+i] = byte(f.v >> (8 * i))
		}
	}
	dev.Write(desc, 0, descBytes)
	dev.RegWrite(accel.SSSPArgDesc, uint64(desc.Addr))

	start := h.K.Now()
	if err := dev.Run(); err != nil {
		log.Fatal(err)
	}
	elapsed := h.K.Now() - start

	raw := make([]byte, distBuf.Size)
	dev.Read(distBuf, 0, raw)
	dist := make([]uint64, g.NumVertices)
	for v := range dist {
		for i := 0; i < 8; i++ {
			dist[v] |= uint64(raw[8*v+i]) << (8 * i)
		}
	}
	rounds, _ := dev.RegRead(accel.SSSPArgResult)
	fmt.Printf("accelerator converged in %d relaxation rounds\n", rounds)
	return elapsed, dist
}
