// Multitenant: oversubscription with preemptive temporal multiplexing.
// Six tenants share two physical MemBench accelerators (three virtual
// accelerators each); the run is repeated under the round-robin, weighted,
// and priority schedulers to show the policies' occupancy shares (§6.8).
package main

import (
	"fmt"
	"log"

	"optimus"
	"optimus/internal/accel"
	"optimus/internal/hv"
	"optimus/internal/sim"
)

func main() {
	cases := []struct {
		name   string
		policy hv.Policy
	}{
		{"round-robin (equal slices)", optimus.PolicyRR},
		{"weighted round-robin (4:2:1)", optimus.PolicyWRR},
		{"priority (pair 0 > pair 1 > pair 2)", optimus.PolicyPriority},
	}
	for _, c := range cases {
		run(c.name, c.policy)
	}
}

func run(name string, policy hv.Policy) {
	h, err := optimus.New(optimus.Config{
		Accels:    []string{"MB", "MB"},
		TimeSlice: 1 * sim.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	h.Scheduler(0).SetPolicy(policy)
	h.Scheduler(1).SetPolicy(policy)

	type tenantInfo struct {
		dev  *optimus.Device
		va   *optimus.VAccel
		slot int
	}
	var tenants []tenantInfo
	weights := []int{4, 2, 1}
	for i := 0; i < 6; i++ {
		slot := i % 2
		vm, err := h.NewVM(fmt.Sprintf("tenant-%d", i), 10<<30)
		if err != nil {
			log.Fatal(err)
		}
		proc := vm.NewProcess()
		va, err := h.NewVAccel(proc, slot)
		if err != nil {
			log.Fatal(err)
		}
		va.SetWeight(weights[i/2])
		va.SetPriority(3 - i/2)
		dev, err := optimus.OpenDevice(proc, va)
		if err != nil {
			log.Fatal(err)
		}
		buf, err := dev.AllocDMA(16 << 20)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := dev.SetupStateBuffer(); err != nil {
			log.Fatal(err)
		}
		dev.RegWrite(accel.MBArgBase, uint64(buf.Addr))
		dev.RegWrite(accel.MBArgSize, buf.Size)
		dev.RegWrite(accel.MBArgBursts, 0) // run until preempted
		dev.RegWrite(accel.MBArgWritePct, 20)
		dev.RegWrite(accel.MBArgSeed, uint64(i))
		if err := dev.Start(); err != nil {
			log.Fatal(err)
		}
		tenants = append(tenants, tenantInfo{dev: dev, va: va, slot: slot})
	}

	const window = 30 * sim.Millisecond
	h.K.RunFor(window)

	fmt.Printf("\n=== %s ===\n", name)
	fmt.Printf("(30 ms window, 1 ms slices, 2 physical x 3 virtual accelerators)\n")
	fmt.Printf("%-10s %-5s %-10s %-7s %-12s %-7s\n", "tenant", "slot", "weight", "prio", "work (MB)", "share")
	for i, tn := range tenants {
		occ := tn.va.Runtime()
		share := 100 * float64(occ) / float64(window)
		fmt.Printf("tenant-%-3d %-5d %-10d %-7d %-12.1f %5.1f%%\n",
			i, tn.slot, weights[i/2], 3-i/2, float64(tn.va.WorkDone())/1e6, share)
	}
	fmt.Printf("context switches: slot0=%d slot1=%d, forced resets: %d\n",
		h.Scheduler(0).Switches(), h.Scheduler(1).Switches(), h.Stats().ForcedResets)
}
