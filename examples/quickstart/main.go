// Quickstart: one VM, one AES accelerator, one encryption job through the
// full OPTIMUS stack — hypervisor, hardware monitor, page table slicing,
// shadow paging — verified against crypto/aes on the host side.
package main

import (
	"bytes"
	stdaes "crypto/aes"
	"fmt"
	"log"

	"optimus"
	"optimus/internal/accel"
)

func main() {
	// 1. The cloud provider synthesizes a bitstream with one AES
	//    accelerator behind the OPTIMUS hardware monitor.
	h, err := optimus.New(optimus.Config{Accels: []string{"AES"}})
	if err != nil {
		log.Fatal(err)
	}

	// 2. A customer VM boots; its application opens the virtual
	//    accelerator through the guest driver + userspace library.
	vm, err := h.NewVM("customer-1", 10<<30)
	if err != nil {
		log.Fatal(err)
	}
	proc := vm.NewProcess()
	va, err := h.NewVAccel(proc, 0)
	if err != nil {
		log.Fatal(err)
	}
	dev, err := optimus.OpenDevice(proc, va)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Allocate shared CPU/FPGA memory: the same guest-virtual pointers
	//    work on both sides (the unified address space of the
	//    shared-memory model).
	key := []byte("0123456789abcdef")
	plaintext := []byte("OPTIMUS multiplexes shared-memory FPGAs among cloud tenants...!!")
	keyBuf, _ := dev.AllocDMA(64)
	src, _ := dev.AllocDMA(uint64(len(plaintext)))
	dst, _ := dev.AllocDMA(uint64(len(plaintext)))
	dev.Write(keyBuf, 0, key)
	dev.Write(src, 0, plaintext)

	// 4. Program the accelerator's application registers over (trapped)
	//    MMIO and run the job.
	dev.RegWrite(accel.XFArgSrc, uint64(src.Addr))
	dev.RegWrite(accel.XFArgDst, uint64(dst.Addr))
	dev.RegWrite(accel.XFArgLen, uint64(len(plaintext)))
	dev.RegWrite(accel.XFArgParam, uint64(keyBuf.Addr))
	if err := dev.Run(); err != nil {
		log.Fatal(err)
	}

	// 5. Read the ciphertext back through the CPU side and verify.
	ciphertext := make([]byte, len(plaintext))
	dev.Read(dst, 0, ciphertext)

	ref, _ := stdaes.NewCipher(key)
	want := make([]byte, len(plaintext))
	for i := 0; i < len(plaintext); i += 16 {
		ref.Encrypt(want[i:i+16], plaintext[i:i+16])
	}
	if !bytes.Equal(ciphertext, want) {
		log.Fatal("ciphertext does not match crypto/aes!")
	}

	fmt.Printf("encrypted %d bytes on the virtual AES accelerator\n", len(plaintext))
	fmt.Printf("ciphertext[0:16] = %x\n", ciphertext[:16])
	fmt.Printf("verified against crypto/aes: OK\n")
	st := h.Stats()
	fmt.Printf("hypervisor: %d MMIO traps, %d shadow-paging hypercalls, %d pages pinned\n",
		st.MMIOTraps, st.Hypercalls, st.PagesPinned)
	fmt.Printf("simulated time: %v\n", h.K.Now())
}
