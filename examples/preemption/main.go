// Preemption: writing a custom preemption-capable accelerator against the
// OPTIMUS accelerator framework (§4.2).
//
// The accelerator ("COUNTER") walks a buffer accumulating a checksum. Its
// preemption state is exactly what the paper recommends a designer
// identify: the current offset and the running sum — two registers — so a
// context switch costs one cache line of state DMA. The demo runs two
// virtual counter accelerators time-sliced on one physical slot and shows
// both jobs finish with correct sums despite repeated preemption.
package main

import (
	"fmt"
	"log"

	"optimus/internal/accel"
	"optimus/internal/ccip"
	"optimus/internal/guest"
	"optimus/internal/hv"
	"optimus/internal/sim"
)

// CounterLogic is a minimal custom accelerator implementing accel.Logic.
// Application registers: arg0 = buffer GVA, arg1 = length in bytes.
// Result: arg2 = sum of all little-endian u64 words.
type CounterLogic struct {
	base, size uint64
	off        uint64
	sum        uint64
}

// Name implements accel.Logic.
func (c *CounterLogic) Name() string { return "COUNTER" }

// FreqMHz implements accel.Logic.
func (c *CounterLogic) FreqMHz() int { return 400 }

// StateBytes implements accel.Logic: the minimal execution state — the
// paper's linked-list example saves just "the address of the next node";
// we save the offset and running sum plus job parameters.
func (c *CounterLogic) StateBytes() int { return 32 }

// Start implements accel.Logic.
func (c *CounterLogic) Start(a *accel.Accel) {
	c.base = a.Arg(0)
	c.size = a.Arg(1)
	c.off = 0
	c.sum = 0
	if c.size%ccip.LineSize != 0 {
		a.Fail(fmt.Errorf("counter: size %d not line-aligned", c.size))
	}
}

// Pump implements accel.Logic: stream the buffer, 8 lines per request.
func (c *CounterLogic) Pump(a *accel.Accel) {
	for a.CanIssue() {
		if c.off >= c.size {
			if a.Idle() && a.Status() == accel.StatusRunning {
				a.SetArg(2, c.sum)
				a.JobDone()
			}
			return
		}
		lines := 8
		if rem := (c.size - c.off) / ccip.LineSize; uint64(lines) > rem {
			lines = int(rem)
		}
		off := c.off
		c.off += uint64(lines) * ccip.LineSize
		a.Read(c.base+off, lines, func(data []byte, err error) {
			if err != nil {
				a.Fail(err)
				return
			}
			for i := 0; i+8 <= len(data); i += 8 {
				var v uint64
				for b := 0; b < 8; b++ {
					v |= uint64(data[i+b]) << (8 * b)
				}
				c.sum += v
			}
			a.AddWork(uint64(len(data)))
		})
	}
}

// SaveState implements accel.Logic.
func (c *CounterLogic) SaveState() []byte {
	buf := make([]byte, 32)
	put := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			buf[off+i] = byte(v >> (8 * i))
		}
	}
	put(0, c.base)
	put(8, c.size)
	// Drain guarantees all reads completed; resuming from c.off would skip
	// none and double-count none... except reads complete out of order, so
	// the safe resume point is the lowest unprocessed offset. For this
	// demo the sum is order-independent and every issued read completed,
	// so (off, sum) is exact.
	put(16, c.off)
	put(24, c.sum)
	return buf
}

// RestoreState implements accel.Logic.
func (c *CounterLogic) RestoreState(data []byte) error {
	if len(data) < 32 {
		return fmt.Errorf("counter: short state")
	}
	get := func(off int) uint64 {
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(data[off+i]) << (8 * i)
		}
		return v
	}
	c.base, c.size, c.off, c.sum = get(0), get(8), get(16), get(24)
	return nil
}

// ResetLogic implements accel.Logic.
func (c *CounterLogic) ResetLogic() { *c = CounterLogic{} }

func main() {
	// Build a platform with a LinkedList slot, then swap our custom logic
	// into slot 0 (the "synthesize your own accelerator" path: the
	// framework, monitor, and hypervisor are unchanged).
	h, err := hv.New(hv.Config{Accels: []string{"LL"}, TimeSlice: 200 * sim.Microsecond})
	if err != nil {
		log.Fatal(err)
	}
	counter := accel.New(&CounterLogic{})
	if err := h.ReplaceAccel(0, counter); err != nil {
		log.Fatal(err)
	}

	const bufSize = 8 << 20
	type tenantState struct {
		dev  *guest.Device
		want uint64
	}
	var tenants []tenantState
	for i := 0; i < 2; i++ {
		vm, _ := h.NewVM(fmt.Sprintf("vm%d", i), 10<<30)
		proc := vm.NewProcess()
		va, err := h.NewVAccel(proc, 0)
		if err != nil {
			log.Fatal(err)
		}
		dev, err := guest.Open(proc, va)
		if err != nil {
			log.Fatal(err)
		}
		buf, err := dev.AllocDMA(bufSize)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := dev.SetupStateBuffer(); err != nil {
			log.Fatal(err)
		}
		// Fill the buffer with a known pattern and compute the expected sum.
		rng := sim.NewRand(uint64(i) + 1)
		data := make([]byte, bufSize)
		rng.Fill(data)
		dev.Write(buf, 0, data)
		var want uint64
		for off := 0; off+8 <= len(data); off += 8 {
			var v uint64
			for b := 0; b < 8; b++ {
				v |= uint64(data[off+b]) << (8 * b)
			}
			want += v
		}
		dev.RegWrite(0, uint64(buf.Addr))
		dev.RegWrite(1, bufSize)
		if err := dev.Start(); err != nil {
			log.Fatal(err)
		}
		tenants = append(tenants, tenantState{dev: dev, want: want})
	}

	h.K.RunFor(200 * sim.Millisecond)
	fmt.Println("two COUNTER jobs time-sliced on one physical accelerator (200 us slices):")
	for i, tn := range tenants {
		got, _ := tn.dev.RegRead(2)
		status := "WRONG"
		if got == tn.want {
			status = "OK"
		}
		fmt.Printf("  tenant %d: sum=%#x want=%#x  %s\n", i, got, tn.want, status)
		if got != tn.want {
			log.Fatal("checksum corrupted across preemption")
		}
	}
	fmt.Printf("context switches: %d (state saved/restored each time)\n", h.Scheduler(0).Switches())
}
