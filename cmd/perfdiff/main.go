// Command perfdiff compares two optimus-bench -json artifacts and fails
// (exit 1) when the newer one shows a performance regression: more than the
// allowed percentage increase in ns/event for any experiment present in
// both, or in total wall time. It is the gate scripts/perfdiff.sh runs in CI
// after regenerating the current artifact.
//
// Usage:
//
//	perfdiff [-max-regress 15] OLD.json NEW.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type expRecord struct {
	Exp          string  `json:"exp"`
	WallMS       float64 `json:"wall_ms"`
	Events       uint64  `json:"events_executed"`
	EventsPerSec float64 `json:"events_per_sec"`
}

type benchArtifact struct {
	Scale      string      `json:"scale"`
	Par        int         `json:"par"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	TotalMS    float64     `json:"total_wall_ms"`
	Records    []expRecord `json:"experiments"`
}

func load(path string) (*benchArtifact, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a benchArtifact
	if err := json.Unmarshal(buf, &a); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &a, nil
}

// nsPerEvent is the comparison metric: host nanoseconds of wall time per
// simulated event. Lower is better; it is robust to experiments simulating
// different amounts of virtual time across commits.
func nsPerEvent(r expRecord) float64 {
	if r.Events == 0 {
		return 0
	}
	return r.WallMS * 1e6 / float64(r.Events)
}

func main() {
	maxRegress := flag.Float64("max-regress", 15, "allowed ns/event increase per experiment (percent)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: perfdiff [-max-regress pct] OLD.json NEW.json")
		os.Exit(2)
	}
	oldArt, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfdiff:", err)
		os.Exit(2)
	}
	newArt, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfdiff:", err)
		os.Exit(2)
	}
	if oldArt.Scale != newArt.Scale || oldArt.Par != newArt.Par {
		fmt.Fprintf(os.Stderr, "perfdiff: artifacts not comparable: scale/par %s/%d vs %s/%d\n",
			oldArt.Scale, oldArt.Par, newArt.Scale, newArt.Par)
		os.Exit(2)
	}

	prev := make(map[string]expRecord, len(oldArt.Records))
	for _, r := range oldArt.Records {
		prev[r.Exp] = r
	}
	failed := false
	compared := 0
	for _, r := range newArt.Records {
		p, ok := prev[r.Exp]
		if !ok {
			fmt.Printf("  %-12s new experiment, no baseline\n", r.Exp)
			continue
		}
		compared++
		oldNS, newNS := nsPerEvent(p), nsPerEvent(r)
		if oldNS == 0 || newNS == 0 {
			continue
		}
		delta := (newNS - oldNS) / oldNS * 100
		status := "ok"
		if delta > *maxRegress {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("  %-12s %8.1f -> %8.1f ns/event  %+6.1f%%  %s\n", r.Exp, oldNS, newNS, delta, status)
	}
	if compared == 0 {
		fmt.Println("perfdiff: no common experiments to compare")
		os.Exit(2)
	}
	if failed {
		fmt.Printf("perfdiff: FAIL (> %.0f%% ns/event regression)\n", *maxRegress)
		os.Exit(1)
	}
	fmt.Println("perfdiff: PASS")
}
