// Command perfdiff tracks the simulator's performance trajectory across the
// committed BENCH_<n>.json lineage.
//
// Gate mode (the default, run by scripts/perfdiff.sh in CI) compares two
// optimus-bench -json artifacts and fails (exit 1) on a regression: more
// than -max-regress percent increase in ns/event for any experiment present
// in both. Experiments that execute no simulator events (table1, table2,
// timing — pure functional-model validation) are compared on wall time
// instead, against the looser -max-wall-regress bound, because wall time is
// all they report and it is noisier in CI.
//
// Trend mode (-trend) reads every committed BENCH_<n>.json in a directory,
// orders them by PR number, and prints each experiment's events/sec (or
// wall time for event-free experiments) across the lineage with the delta
// against the previous artifact — the long-run report that shows where each
// PR's performance work landed.
//
// Usage:
//
//	perfdiff [-max-regress 15] [-max-wall-regress 50] OLD.json NEW.json
//	perfdiff -trend [DIR]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

type expRecord struct {
	Exp           string  `json:"exp"`
	WallMS        float64 `json:"wall_ms"`
	Events        uint64  `json:"events_executed"`
	EventsPerSec  float64 `json:"events_per_sec"`
	SetupMS       float64 `json:"setup_wall_ms"`
	SteadyMS      float64 `json:"steady_wall_ms"`
	CloneMS       float64 `json:"clone_wall_ms"`
	ResidentBytes uint64  `json:"resident_bytes"`
	SharedBytes   uint64  `json:"shared_bytes"`
	PABusyPct     float64 `json:"pa_busy_pct"`
	PAStallPct    float64 `json:"pa_stall_pct"`
	// Serving fields (the serve experiment, PR 10 on): peak-load elastic
	// operating point. Latency is a property of the simulated workload, so
	// shifts are behavior-change signals — reported, never gated.
	OfferedLoad     float64 `json:"offered_load"`
	AchievedGoodput float64 `json:"achieved_goodput"`
	P999NS          uint64  `json:"p999_ns"`
	SLOViolationPct float64 `json:"slo_violation_pct"`
}

type benchArtifact struct {
	Scale      string      `json:"scale"`
	Par        int         `json:"par"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	CoW        bool        `json:"cow"`
	TotalMS    float64     `json:"total_wall_ms"`
	Records    []expRecord `json:"experiments"`
}

func load(path string) (*benchArtifact, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a benchArtifact
	if err := json.Unmarshal(buf, &a); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &a, nil
}

// nsPerEvent is the gate metric: host nanoseconds of wall time per
// simulated event. Lower is better; it is robust to experiments simulating
// different amounts of virtual time across commits. Zero means the
// experiment drives no simulator events and must be compared on wall time.
func nsPerEvent(r expRecord) float64 {
	if r.Events == 0 {
		return 0
	}
	return r.WallMS * 1e6 / float64(r.Events)
}

func main() {
	maxRegress := flag.Float64("max-regress", 15, "allowed ns/event increase per experiment (percent)")
	maxWallRegress := flag.Float64("max-wall-regress", 50, "allowed wall-time increase for experiments with no simulator events (percent)")
	minWallMS := flag.Float64("min-wall-ms", 50, "wall-time noise floor: zero-event experiments faster than this on both sides are never a regression")
	maxMemRegress := flag.Float64("max-mem-regress", 15, "allowed resident-memory increase per experiment (percent)")
	minMemBytes := flag.Float64("min-mem-bytes", 1<<20, "memory noise floor: experiments resident below this on both sides are never a memory regression")
	trend := flag.Bool("trend", false, "print the events/sec trend across every committed BENCH_<n>.json in DIR (default .) instead of gating")
	flag.Parse()

	if *trend {
		dir := "."
		if flag.NArg() > 0 {
			dir = flag.Arg(0)
		}
		os.Exit(trendReport(dir))
	}

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: perfdiff [-max-regress pct] [-max-wall-regress pct] OLD.json NEW.json\n       perfdiff -trend [DIR]")
		os.Exit(2)
	}
	oldArt, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfdiff:", err)
		os.Exit(2)
	}
	newArt, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfdiff:", err)
		os.Exit(2)
	}
	if oldArt.Scale != newArt.Scale || oldArt.Par != newArt.Par {
		fmt.Fprintf(os.Stderr, "perfdiff: artifacts not comparable: scale/par %s/%d vs %s/%d\n",
			oldArt.Scale, oldArt.Par, newArt.Scale, newArt.Par)
		os.Exit(2)
	}

	prev := make(map[string]expRecord, len(oldArt.Records))
	for _, r := range oldArt.Records {
		prev[r.Exp] = r
	}
	failed := false
	compared := 0
	for _, r := range newArt.Records {
		p, ok := prev[r.Exp]
		if !ok {
			fmt.Printf("  %-12s new experiment, no baseline\n", r.Exp)
			continue
		}
		compared++
		oldNS, newNS := nsPerEvent(p), nsPerEvent(r)
		switch {
		case oldNS > 0 && newNS > 0:
			delta := (newNS - oldNS) / oldNS * 100
			status := "ok"
			if delta > *maxRegress {
				status = "REGRESSION"
				failed = true
			}
			fmt.Printf("  %-12s %8.1f -> %8.1f ns/event  %+6.1f%%  %s\n", r.Exp, oldNS, newNS, delta, status)
		case p.Events == 0 && r.Events == 0:
			// No simulator events on either side: wall time is the only
			// signal. Guard the divide — a degenerate zero-wall baseline
			// compares as unchanged.
			if p.WallMS <= 0 {
				fmt.Printf("  %-12s no events and no baseline wall time, skipped\n", r.Exp)
				continue
			}
			delta := (r.WallMS - p.WallMS) / p.WallMS * 100
			status := "ok"
			if delta > *maxWallRegress && (p.WallMS >= *minWallMS || r.WallMS >= *minWallMS) {
				status = "REGRESSION"
				failed = true
			}
			fmt.Printf("  %-12s %8.1f -> %8.1f ms wall    %+6.1f%%  %s (no events)\n", r.Exp, p.WallMS, r.WallMS, delta, status)
		default:
			fmt.Printf("  %-12s event counts changed zero/nonzero (%d -> %d), not comparable\n", r.Exp, p.Events, r.Events)
		}
		// Memory gate: resident bytes at platform acquisition, present in
		// artifacts from PR 8 on (absent fields load as 0 and are skipped).
		// Resident residency is comparable across -cow modes — only
		// SharedBytes depends on the sharing strategy, so it is reported
		// but never gated.
		if p.ResidentBytes > 0 && r.ResidentBytes > 0 {
			delta := (float64(r.ResidentBytes) - float64(p.ResidentBytes)) / float64(p.ResidentBytes) * 100
			status := "ok"
			if delta > *maxMemRegress && (float64(p.ResidentBytes) >= *minMemBytes || float64(r.ResidentBytes) >= *minMemBytes) {
				status = "MEM REGRESSION"
				failed = true
			}
			fmt.Printf("  %-12s %8s -> %8s resident  %+6.1f%%  %s (shared %s -> %s)\n",
				r.Exp, fmtBytes(p.ResidentBytes), fmtBytes(r.ResidentBytes), delta, status,
				fmtBytes(p.SharedBytes), fmtBytes(r.SharedBytes))
		}
		// Utilization diff: accelerator-lane busy/stall fractions from the
		// profiler (artifacts run with -profile, PR 9 on). Utilization is a
		// property of the simulated workload, not the host, so shifts signal
		// a behavior change in the simulator rather than a performance
		// regression — reported, never gated.
		if p.PABusyPct > 0 && r.PABusyPct > 0 {
			fmt.Printf("  %-12s %7.1f%% -> %6.1f%% pa busy   %+5.1fpp (stall %.1f%% -> %.1f%%)\n",
				r.Exp, p.PABusyPct, r.PABusyPct, r.PABusyPct-p.PABusyPct,
				p.PAStallPct, r.PAStallPct)
		}
		// Serving latency diff: the serve experiment's tail latency and SLO
		// violation fraction at its top elastic operating point (PR 10 on).
		// Like utilization, these describe the simulated workload, so a shift
		// means serving behavior changed — reported, never gated.
		if p.P999NS > 0 && r.P999NS > 0 {
			fmt.Printf("  %-12s %7.1fus -> %6.1fus p999    %+5.1f%% viol %.1f%% -> %.1f%% (goodput %s -> %s req/s)\n",
				r.Exp, float64(p.P999NS)/1e3, float64(r.P999NS)/1e3,
				(float64(r.P999NS)-float64(p.P999NS))/float64(p.P999NS)*100,
				p.SLOViolationPct, r.SLOViolationPct,
				fmtRate(p.AchievedGoodput), fmtRate(r.AchievedGoodput))
		}
	}
	if compared == 0 {
		fmt.Println("perfdiff: no common experiments to compare")
		os.Exit(2)
	}
	if failed {
		fmt.Printf("perfdiff: FAIL (> %.0f%% ns/event, > %.0f%% wall, or > %.0f%% resident-memory regression)\n",
			*maxRegress, *maxWallRegress, *maxMemRegress)
		os.Exit(1)
	}
	fmt.Println("perfdiff: PASS")
}

// fmtBytes renders a byte count compactly (12.3MB, 480KB).
func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.0fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// lineage returns the committed BENCH_<n>.json artifacts in dir, ordered by
// PR number.
func lineage(dir string) ([]string, []int, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, nil, err
	}
	type entry struct {
		path string
		n    int
	}
	var entries []entry
	for _, m := range matches {
		base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(m), "BENCH_"), ".json")
		n, err := strconv.Atoi(base)
		if err != nil {
			continue // not part of the numbered lineage
		}
		entries = append(entries, entry{m, n})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].n < entries[j].n })
	paths := make([]string, len(entries))
	nums := make([]int, len(entries))
	for i, e := range entries {
		paths[i], nums[i] = e.path, e.n
	}
	return paths, nums, nil
}

// fmtRate renders an events/sec figure compactly (1.35M, 126k).
func fmtRate(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.0fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func trendReport(dir string) int {
	paths, nums, err := lineage(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfdiff:", err)
		return 2
	}
	if len(paths) == 0 {
		fmt.Printf("perfdiff: no BENCH_<n>.json artifacts in %s\n", dir)
		return 0
	}
	arts := make([]*benchArtifact, len(paths))
	for i, p := range paths {
		a, err := load(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfdiff:", err)
			return 2
		}
		arts[i] = a
	}

	fmt.Printf("perf trend across %d artifacts:", len(arts))
	for i, p := range paths {
		fmt.Printf(" %s(%s/par%d)", filepath.Base(p), arts[i].Scale, arts[i].Par)
	}
	fmt.Println()

	// Experiment order: as listed in the newest artifact, then any id that
	// only older artifacts know, in first-seen order.
	var order []string
	seen := map[string]bool{}
	for _, r := range arts[len(arts)-1].Records {
		order = append(order, r.Exp)
		seen[r.Exp] = true
	}
	for _, a := range arts {
		for _, r := range a.Records {
			if !seen[r.Exp] {
				order = append(order, r.Exp)
				seen[r.Exp] = true
			}
		}
	}

	byExp := make([]map[string]expRecord, len(arts))
	for i, a := range arts {
		byExp[i] = make(map[string]expRecord, len(a.Records))
		for _, r := range a.Records {
			byExp[i][r.Exp] = r
		}
	}

	header := fmt.Sprintf("%-12s", "experiment")
	for _, n := range nums {
		header += fmt.Sprintf("  %16s", fmt.Sprintf("BENCH_%d", n))
	}
	fmt.Println(header)
	comparable := func(i, j int) bool {
		return arts[i].Scale == arts[j].Scale && arts[i].Par == arts[j].Par
	}
	for _, id := range order {
		line := fmt.Sprintf("%-12s", id)
		prevIdx := -1
		for i := range arts {
			r, ok := byExp[i][id]
			if !ok {
				line += fmt.Sprintf("  %16s", "-")
				continue
			}
			var cell string
			if r.Events > 0 {
				cell = fmtRate(r.EventsPerSec) + " ev/s"
			} else {
				cell = fmt.Sprintf("%.1fms wall", r.WallMS)
			}
			if prevIdx >= 0 && comparable(prevIdx, i) {
				p := byExp[prevIdx][id]
				var delta float64
				switch {
				case r.Events > 0 && p.Events > 0:
					delta = (r.EventsPerSec - p.EventsPerSec) / p.EventsPerSec * 100
					cell += fmt.Sprintf(" %+.0f%%", delta)
				case r.Events == 0 && p.Events == 0 && p.WallMS > 0:
					delta = (r.WallMS - p.WallMS) / p.WallMS * 100
					cell += fmt.Sprintf(" %+.0f%%", delta)
				}
			}
			line += fmt.Sprintf("  %16s", cell)
			prevIdx = i
		}
		fmt.Println(line)
	}

	line := fmt.Sprintf("%-12s", "total wall")
	prevIdx := -1
	for i, a := range arts {
		cell := fmt.Sprintf("%.0fs", a.TotalMS/1e3)
		if prevIdx >= 0 && comparable(prevIdx, i) && arts[prevIdx].TotalMS > 0 {
			cell += fmt.Sprintf(" %+.0f%%", (a.TotalMS-arts[prevIdx].TotalMS)/arts[prevIdx].TotalMS*100)
		}
		line += fmt.Sprintf("  %16s", cell)
		prevIdx = i
	}
	fmt.Println(line)

	// Memory trend: resident bytes at platform acquisition plus the CoW
	// sharing ratio, for artifacts that record them (PR 8 on). Cells show
	// "resident/share%"; older artifacts show "-".
	anyMem := false
	for _, a := range arts {
		for _, r := range a.Records {
			if r.ResidentBytes > 0 {
				anyMem = true
			}
		}
	}
	if anyMem {
		fmt.Println()
		fmt.Println("memory trend (resident bytes at acquisition / CoW-shared fraction):")
		fmt.Println(header)
		for _, id := range order {
			line := fmt.Sprintf("%-12s", id)
			shown := false
			for i := range arts {
				r, ok := byExp[i][id]
				if !ok || r.ResidentBytes == 0 {
					line += fmt.Sprintf("  %16s", "-")
					continue
				}
				shown = true
				cell := fmt.Sprintf("%s/%.0f%%sh", fmtBytes(r.ResidentBytes),
					float64(r.SharedBytes)/float64(r.ResidentBytes)*100)
				line += fmt.Sprintf("  %16s", cell)
			}
			if shown {
				fmt.Println(line)
			}
		}
	}

	// Utilization trend: accelerator-lane busy fraction for artifacts whose
	// runs were profiled (PR 9 on). Cells show "busy%/stall%".
	anyUtil := false
	for _, a := range arts {
		for _, r := range a.Records {
			if r.PABusyPct > 0 {
				anyUtil = true
			}
		}
	}
	if anyUtil {
		fmt.Println()
		fmt.Println("utilization trend (accelerator lanes, busy% / stall% of simulated time):")
		fmt.Println(header)
		for _, id := range order {
			line := fmt.Sprintf("%-12s", id)
			shown := false
			for i := range arts {
				r, ok := byExp[i][id]
				if !ok || r.PABusyPct == 0 {
					line += fmt.Sprintf("  %16s", "-")
					continue
				}
				shown = true
				line += fmt.Sprintf("  %16s", fmt.Sprintf("%.1f%%/%.1f%%", r.PABusyPct, r.PAStallPct))
			}
			if shown {
				fmt.Println(line)
			}
		}
	}

	// Serving trend: tail latency and SLO violation fraction at the serve
	// experiment's top elastic operating point (PR 10 on). Cells show
	// "p999/viol%"; informational like utilization — latency curves are
	// workload properties, so the lineage row shows behavior drift, not a
	// gated regression.
	anyServe := false
	for _, a := range arts {
		for _, r := range a.Records {
			if r.P999NS > 0 {
				anyServe = true
			}
		}
	}
	if anyServe {
		fmt.Println()
		fmt.Println("serving trend (p999 latency / SLO violation % at top elastic load):")
		fmt.Println(header)
		for _, id := range order {
			line := fmt.Sprintf("%-12s", id)
			shown := false
			for i := range arts {
				r, ok := byExp[i][id]
				if !ok || r.P999NS == 0 {
					line += fmt.Sprintf("  %16s", "-")
					continue
				}
				shown = true
				line += fmt.Sprintf("  %16s", fmt.Sprintf("%.0fus/%.1f%%", float64(r.P999NS)/1e3, r.SLOViolationPct))
			}
			if shown {
				fmt.Println(line)
			}
		}
	}
	return 0
}
