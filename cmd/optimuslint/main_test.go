package main

import (
	"strings"
	"testing"
)

func selectedNames(t *testing.T, only string) []string {
	t.Helper()
	sel, err := selectAnalyzers(analyzers, only)
	if err != nil {
		t.Fatalf("selectAnalyzers(%q): %v", only, err)
	}
	out := make([]string, len(sel))
	for i, a := range sel {
		out[i] = a.Name
	}
	return out
}

func TestSelectAnalyzersAll(t *testing.T) {
	got := selectedNames(t, "")
	if len(got) != len(analyzers) {
		t.Fatalf("empty -only selected %d analyzers, want all %d", len(got), len(analyzers))
	}
}

func TestSelectAnalyzersSingle(t *testing.T) {
	got := selectedNames(t, "statecopy")
	if len(got) != 1 || got[0] != "statecopy" {
		t.Fatalf("-only statecopy selected %v", got)
	}
}

func TestSelectAnalyzersCommaList(t *testing.T) {
	got := selectedNames(t, "globalstate, statecopy ,detwall")
	want := []string{"globalstate", "statecopy", "detwall"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("-only comma list selected %v, want %v", got, want)
	}
}

func TestSelectAnalyzersDuplicates(t *testing.T) {
	// Repeats collapse to the first occurrence; running an analyzer twice
	// would emit every finding twice into the JSON artifact.
	got := selectedNames(t, "detwall,detwall,statecopy,detwall")
	want := []string{"detwall", "statecopy"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("-only with duplicates selected %v, want %v", got, want)
	}
}

func TestSelectAnalyzersUnknown(t *testing.T) {
	if _, err := selectAnalyzers(analyzers, "statecopy,nope"); err == nil {
		t.Fatal("unknown analyzer name did not error")
	} else if !strings.Contains(err.Error(), "nope") {
		t.Fatalf("error %q does not name the bad analyzer", err)
	}
}

func TestSelectAnalyzersEmptyList(t *testing.T) {
	if _, err := selectAnalyzers(analyzers, " , ,"); err == nil {
		t.Fatal("all-blank analyzer list did not error")
	}
}
