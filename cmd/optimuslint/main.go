// Command optimuslint runs the repository's seven OPTIMUS-specific static
// checks over Go packages and exits non-zero on any finding:
//
//	addrspace   — cross-address-space conversions (GVA/GPA/IOVA/HPA) outside
//	              the two sanctioned rewrite points, and raw-uint64 address
//	              parameters
//	detwall     — wall-clock reads, global math/rand, and order-sensitive
//	              map iteration inside the determinism wall (sim, hv, exp,
//	              chaos)
//	faultpath   — discarded errors from fault-injectable boundaries (guest
//	              provisioning/job calls, hv hypercall and MMIO surface)
//	globalstate — package-level mutable state in simulation packages; all
//	              mutable state must hang off a platform
//	              (//optimus:global-ok <reason> to except)
//	hotalloc    — heap-allocating constructs in //optimus:hotpath functions
//	locksafe    — by-value mutex copies and Lock/Unlock imbalance
//	statecopy   — fields of Clone/CopyFrom-able or //optimus:state structs
//	              that the copy method never handles
//	              (//optimus:clone-skip <reason> to except)
//
// Usage:
//
//	go run ./cmd/optimuslint [-only name,name] [-json] [packages]
//
// Packages default to ./.... With -json each finding is printed as one
// JSON object per line ({"analyzer","file","line","col","message"}) for CI
// annotation tooling; exit codes are unchanged (1 on findings, 2 on driver
// errors). The tool is a standalone driver rather than a `go vet -vettool`
// plugin because the vettool protocol requires
// golang.org/x/tools/go/analysis/unitchecker, which this repository's
// offline, stdlib-only build cannot depend on; the analyzers themselves
// mirror go/analysis shapes (see internal/lint) and port mechanically.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"optimus/internal/lint"
	"optimus/internal/lint/addrspace"
	"optimus/internal/lint/detwall"
	"optimus/internal/lint/faultpath"
	"optimus/internal/lint/globalstate"
	"optimus/internal/lint/hotalloc"
	"optimus/internal/lint/locksafe"
	"optimus/internal/lint/statecopy"
)

var analyzers = []*lint.Analyzer{
	addrspace.Analyzer,
	detwall.Analyzer,
	faultpath.Analyzer,
	globalstate.Analyzer,
	hotalloc.Analyzer,
	locksafe.Analyzer,
	statecopy.Analyzer,
}

// selectAnalyzers resolves the -only flag: an empty spec selects every
// analyzer, otherwise a comma-separated list of names (whitespace around
// names tolerated), in the order given. Repeated names collapse to the
// first occurrence — running an analyzer twice would double every finding
// in the JSON artifact.
func selectAnalyzers(all []*lint.Analyzer, only string) ([]*lint.Analyzer, error) {
	if only == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var selected []*lint.Analyzer
	seen := map[string]bool{}
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" || seen[name] {
			continue
		}
		seen[name] = true
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		selected = append(selected, a)
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("empty analyzer list %q", only)
	}
	return selected, nil
}

// jsonFinding is the -json wire format: one object per line so CI can
// stream-parse findings into annotations.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func main() {
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	asJSON := flag.Bool("json", false, "emit one JSON finding per line instead of plain text")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: optimuslint [-only name,...] [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-11s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected, err := selectAnalyzers(analyzers, *only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "optimuslint: %v\n", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "optimuslint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.Run(selected, pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "optimuslint: %v\n", err)
		os.Exit(2)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			f := jsonFinding{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			}
			if err := enc.Encode(f); err != nil {
				fmt.Fprintf(os.Stderr, "optimuslint: %v\n", err)
				os.Exit(2)
			}
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "optimuslint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
