// Command optimuslint runs the repository's five OPTIMUS-specific static
// checks over Go packages and exits non-zero on any finding:
//
//	addrspace — cross-address-space conversions (GVA/GPA/IOVA/HPA) outside
//	            the two sanctioned rewrite points, and raw-uint64 address
//	            parameters
//	detwall   — wall-clock reads, global math/rand, and order-sensitive
//	            map iteration inside the determinism wall (sim, hv, exp,
//	            chaos)
//	faultpath — discarded errors from fault-injectable boundaries (guest
//	            provisioning/job calls, hv hypercall and MMIO surface)
//	hotalloc  — heap-allocating constructs in //optimus:hotpath functions
//	locksafe  — by-value mutex copies and Lock/Unlock imbalance
//
// Usage:
//
//	go run ./cmd/optimuslint [-only name[,name]] [packages]
//
// Packages default to ./.... The tool is a standalone driver rather than a
// `go vet -vettool` plugin because the vettool protocol requires
// golang.org/x/tools/go/analysis/unitchecker, which this repository's
// offline, stdlib-only build cannot depend on; the analyzers themselves
// mirror go/analysis shapes (see internal/lint) and port mechanically.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"optimus/internal/lint"
	"optimus/internal/lint/addrspace"
	"optimus/internal/lint/detwall"
	"optimus/internal/lint/faultpath"
	"optimus/internal/lint/hotalloc"
	"optimus/internal/lint/locksafe"
)

var analyzers = []*lint.Analyzer{
	addrspace.Analyzer,
	detwall.Analyzer,
	faultpath.Analyzer,
	hotalloc.Analyzer,
	locksafe.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: optimuslint [-only name,...] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected := analyzers
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "optimuslint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "optimuslint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.Run(selected, pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "optimuslint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "optimuslint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
