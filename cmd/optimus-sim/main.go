// Command optimus-sim runs one virtualization scenario on the simulated
// platform and prints its measurements: a quick way to explore the design
// space (accelerator mix, job counts, page sizes, time slices, scheduler
// policies) outside the canned experiments.
//
// Usage:
//
//	optimus-sim -accel MB -jobs 4 -ws 64M -duration 10ms
//	optimus-sim -accel LL -jobs 2 -temporal -slice 1ms -policy wrr
//	optimus-sim -accel AES -jobs 8 -pages 4k
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"optimus/internal/accel"
	"optimus/internal/chaos"
	"optimus/internal/guest"
	"optimus/internal/hv"
	"optimus/internal/mem"
	"optimus/internal/obs"
	"optimus/internal/sim"
)

func parseBytes(s string) (uint64, error) {
	mult := uint64(1)
	switch {
	case strings.HasSuffix(s, "G"):
		mult = 1 << 30
		s = strings.TrimSuffix(s, "G")
	case strings.HasSuffix(s, "M"):
		mult = 1 << 20
		s = strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "K"):
		mult = 1 << 10
		s = strings.TrimSuffix(s, "K")
	}
	v, err := strconv.ParseUint(s, 10, 64)
	return v * mult, err
}

func parseDuration(s string) (sim.Time, error) {
	switch {
	case strings.HasSuffix(s, "ms"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "ms"), 64)
		return sim.Time(v * float64(sim.Millisecond)), err
	case strings.HasSuffix(s, "us"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "us"), 64)
		return sim.Time(v * float64(sim.Microsecond)), err
	case strings.HasSuffix(s, "s"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "s"), 64)
		return sim.Time(v * float64(sim.Second)), err
	}
	return 0, fmt.Errorf("duration needs a unit (s/ms/us): %q", s)
}

func main() {
	app := flag.String("accel", "MB", "accelerator (Table 1 abbreviation)")
	jobs := flag.Int("jobs", 1, "number of concurrent jobs")
	temporal := flag.Bool("temporal", false, "multiplex all jobs on ONE physical accelerator (default: one slot each)")
	ws := flag.String("ws", "32M", "per-job working set / input size")
	durFlag := flag.String("duration", "5ms", "simulated measurement window")
	pages := flag.String("pages", "2m", "page size: 2m or 4k")
	sliceFlag := flag.String("slice", "10ms", "temporal multiplexing time slice")
	policy := flag.String("policy", "rr", "temporal scheduler: rr, wrr, prio")
	passthrough := flag.Bool("passthrough", false, "pass-through baseline instead of OPTIMUS")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file (open in ui.perfetto.dev)")
	metrics := flag.Bool("metrics", false, "dump the unified metrics snapshot after the run")
	chaosSpec := flag.String("chaos", "", "seeded fault injection, e.g. seed=7,rate=10000 (keys: seed,rate,xlat,corrupt,drop,dup,pin,retries; rates in ppm)")
	var tel telemetry
	flag.StringVar(&tel.timeseries, "timeseries", "", "write a windowed metric time-series JSON artifact to this file")
	flag.StringVar(&tel.window, "tswindow", "100us", "time-series sampling window (simulated time)")
	flag.BoolVar(&tel.profile, "profile", false, "print the per-actor sim-time utilization report after the run")
	flag.BoolVar(&tel.critpath, "critpath", false, "print the request critical-path analysis after the run")
	flag.Parse()

	if err := run(*app, *jobs, *temporal, *ws, *durFlag, *pages, *sliceFlag, *policy, *passthrough, *traceOut, *metrics, *chaosSpec, tel); err != nil {
		fmt.Fprintln(os.Stderr, "optimus-sim:", err)
		os.Exit(1)
	}
}

// telemetry groups the sim-time telemetry-engine flags: time-series
// sampler, utilization profiler, critical-path analyzer.
type telemetry struct {
	timeseries string
	window     string
	profile    bool
	critpath   bool
}

func run(app string, jobs int, temporal bool, wsFlag, durFlag, pages, sliceFlag, policy string, passthrough bool, traceOut string, metrics bool, chaosSpec string, tel telemetry) error {
	wsBytes, err := parseBytes(wsFlag)
	if err != nil {
		return err
	}
	duration, err := parseDuration(durFlag)
	if err != nil {
		return err
	}
	slice, err := parseDuration(sliceFlag)
	if err != nil {
		return err
	}
	pageSize := uint64(mem.PageSize2M)
	if strings.EqualFold(pages, "4k") {
		pageSize = mem.PageSize4K
	}

	nPhys := jobs
	if temporal {
		nPhys = 1
	}
	if nPhys > 8 {
		return fmt.Errorf("at most 8 physical accelerators (got %d); use -temporal for more jobs", nPhys)
	}
	accels := make([]string, nPhys)
	for i := range accels {
		accels[i] = app
	}
	cfg := hv.Config{Accels: accels, PageSize: pageSize, TimeSlice: slice}
	if passthrough {
		cfg.Mode = hv.ModePassThrough
		if jobs > 1 {
			return fmt.Errorf("pass-through supports a single job")
		}
	}
	if traceOut != "" || tel.profile || tel.critpath {
		cfg.Trace = obs.NewTracer(0)
	}
	cfg.Profile = tel.profile
	if chaosSpec != "" {
		ccfg, err := chaos.ParseSpec(chaosSpec)
		if err != nil {
			return err
		}
		cfg.Chaos = &ccfg
	}
	var reg *obs.Registry
	if metrics || tel.timeseries != "" {
		reg = obs.NewRegistry()
		cfg.Metrics = reg
	}
	if tel.timeseries != "" {
		w, err := parseDuration(tel.window)
		if err != nil {
			return fmt.Errorf("-tswindow: %w", err)
		}
		cfg.Sample = &obs.SampleConfig{Window: w}
	}
	h, err := hv.New(cfg)
	if err != nil {
		return err
	}
	if temporal {
		switch policy {
		case "rr":
		case "wrr":
			h.Scheduler(0).SetPolicy(hv.PolicyWRR)
		case "prio":
			h.Scheduler(0).SetPolicy(hv.PolicyPriority)
		default:
			return fmt.Errorf("unknown policy %q", policy)
		}
	}

	type tenantState struct {
		dev *guest.Device
	}
	tenants := make([]tenantState, jobs)
	for i := 0; i < jobs; i++ {
		slot := i
		if temporal {
			slot = 0
		}
		vm, err := h.NewVM(fmt.Sprintf("vm%d", i), 10<<30)
		if err != nil {
			return err
		}
		proc := vm.NewProcess()
		va, err := h.NewVAccel(proc, slot)
		if err != nil {
			return err
		}
		if temporal {
			va.SetWeight(1 + i%3)
			va.SetPriority(i)
		}
		dev, err := guest.Open(proc, va)
		if err != nil {
			return err
		}
		tenants[i] = tenantState{dev: dev}
		buf, err := dev.AllocDMA(wsBytes)
		if err != nil {
			return err
		}
		if _, err := dev.SetupStateBuffer(); err != nil {
			return err
		}
		switch app {
		case "MB":
			dev.RegWrite(accel.MBArgBase, uint64(buf.Addr))
			dev.RegWrite(accel.MBArgSize, wsBytes)
			dev.RegWrite(accel.MBArgBursts, 0)
			dev.RegWrite(accel.MBArgWritePct, 30)
			dev.RegWrite(accel.MBArgSeed, uint64(i))
		case "LL":
			nodes := int(wsBytes / 256)
			head := buildList(dev, proc, buf, nodes, uint64(i))
			dev.RegWrite(accel.LLArgHead, head)
		default:
			return fmt.Errorf("optimus-sim drives MB and LL scenarios; use optimus-bench for the application suites")
		}
		if err := dev.Start(); err != nil {
			return err
		}
	}

	h.K.RunFor(duration)

	fmt.Printf("scenario: %s x%d (%s), ws=%s, pages=%s, %v window\n",
		app, jobs, map[bool]string{true: "temporal", false: "spatial"}[temporal], wsFlag, pages, duration)
	var totalWork float64
	for i, tn := range tenants {
		va := tn.dev.VAccel()
		work := va.WorkDone()
		totalWork += float64(work)
		fmt.Printf("  job %d: work=%d runtime=%v scheduled=%v\n", i, work, va.Runtime(), va.Scheduled())
	}
	st := h.Shell.Stats()
	fmt.Printf("shell: read %.2f GB/s, write %.2f GB/s, faults=%d\n",
		sim.Throughput(st.BytesRead, duration), sim.Throughput(st.BytesWritten, duration), st.Faults)
	io := h.Shell.IOMMU.Stats()
	fmt.Printf("iotlb: hits=%d misses=%d spec=%d evictions=%d (hit rate %.3f)\n",
		io.Hits, io.Misses, io.SpecHits, io.Evictions, io.HitRate())
	if h.Monitor != nil {
		ms := h.Monitor.Stats()
		fmt.Printf("monitor: dma=%d dropped=%d rangeViolations=%d resets=%d\n",
			ms.DMARequests, ms.DMADropped, ms.RangeViolations, ms.Resets)
	}
	hs := h.Stats()
	fmt.Printf("hypervisor: traps=%d hypercalls=%d switches=%d forcedResets=%d quarantines=%d pinned=%d\n",
		hs.MMIOTraps, hs.Hypercalls, hs.ContextSwitches, hs.ForcedResets, hs.Quarantines, hs.PagesPinned)
	if p := h.Chaos(); p != nil {
		cs := p.Stats()
		fmt.Printf("chaos: injected=%d (xlat=%d corrupt=%d drop=%d dup=%d pin=%d) recovered=%d exhausted=%d\n",
			cs.TotalInjected(), cs.Injected[chaos.ClassXlat], cs.Injected[chaos.ClassCorrupt],
			cs.Injected[chaos.ClassDrop], cs.Injected[chaos.ClassDup], cs.Injected[chaos.ClassPin],
			cs.Recovered, cs.Exhausted)
		fmt.Printf("chaos: xlatRetries=%d retransmits=%d dupsSuppressed=%d pinRetries=%d\n",
			cs.XlatRetries, cs.Retransmits, cs.DupsSuppressed, cs.PinRetries)
		if rec := p.Recovery(); rec.Count() > 0 {
			pc := rec.Percentiles(50, 95, 99)
			fmt.Printf("chaos: recovery latency p50=%v p95=%v p99=%v (%d recoveries)\n",
				pc[0], pc[1], pc[2], rec.Count())
		}
	}
	if reg != nil && metrics {
		fmt.Println("metrics:")
		if err := reg.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if tel.profile {
		fmt.Println("profile:")
		if err := h.Profiler().WriteReport(os.Stdout); err != nil {
			return err
		}
	}
	if tel.critpath {
		fmt.Println("critpath:")
		if err := obs.AnalyzeCritPath(h.Trace().Records()).WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if tel.timeseries != "" {
		f, err := os.Create(tel.timeseries)
		if err != nil {
			return err
		}
		s := h.Sampler()
		if err := s.WriteJSON(f, strings.Join(accels, "+")); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("timeseries: %d windows of %v -> %s\n", s.Windows(), s.Window(), tel.timeseries)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		tr := h.Trace()
		if err := tr.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %d events (%d dropped by ring wrap) -> %s (open in ui.perfetto.dev)\n",
			tr.Len(), tr.Dropped(), traceOut)
	}
	return nil
}

func buildList(dev *guest.Device, proc *hv.Process, buf guest.Buffer, n int, seed uint64) uint64 {
	if n < 2 {
		n = 2
	}
	rng := sim.NewRand(seed ^ 0x515)
	slots := int(buf.Size / 64)
	if n > slots {
		n = slots
	}
	order := rng.Perm(slots)[:n]
	addrs := make([]uint64, n)
	for i, s := range order {
		addrs[i] = uint64(buf.Addr) + uint64(s)*64
	}
	for i := 0; i < n; i++ {
		node := make([]byte, 64)
		var next uint64
		if i+1 < n {
			next = addrs[i+1]
		}
		for b := 0; b < 8; b++ {
			node[b] = byte(next >> (8 * b))
		}
		proc.Write(mem.GVA(addrs[i]), node)
	}
	return addrs[0]
}
