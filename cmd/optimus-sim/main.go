// Command optimus-sim runs one virtualization scenario on the simulated
// platform and prints its measurements: a quick way to explore the design
// space (accelerator mix, job counts, page sizes, time slices, scheduler
// policies) outside the canned experiments.
//
// With -load, the scenario switches from closed-loop (each job re-runs as
// fast as the platform allows) to open-loop serving: an internal/load traffic
// engine offers requests at the specified arrival process, admits them
// through bounded per-tenant queues, and reports latency percentiles and SLO
// violations instead of raw work counts.
//
// Usage:
//
//	optimus-sim -accel MB -jobs 4 -ws 64M -duration 10ms
//	optimus-sim -accel LL -jobs 2 -temporal -slice 1ms -policy wrr
//	optimus-sim -accel AES -jobs 8 -pages 4k
//	optimus-sim -accel MB -jobs 2 -duration 40ms -load kind=poisson,rate=15000 -slo 500us
//	optimus-sim -accel MB -jobs 1 -duration 40ms -load kind=trace,file=day.json -slo 1ms
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"optimus/internal/accel"
	"optimus/internal/chaos"
	"optimus/internal/guest"
	"optimus/internal/hv"
	"optimus/internal/load"
	"optimus/internal/mem"
	"optimus/internal/obs"
	"optimus/internal/sim"
)

func parseBytes(s string) (uint64, error) {
	mult := uint64(1)
	switch {
	case strings.HasSuffix(s, "G"):
		mult = 1 << 30
		s = strings.TrimSuffix(s, "G")
	case strings.HasSuffix(s, "M"):
		mult = 1 << 20
		s = strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "K"):
		mult = 1 << 10
		s = strings.TrimSuffix(s, "K")
	}
	v, err := strconv.ParseUint(s, 10, 64)
	return v * mult, err
}

func parseDuration(s string) (sim.Time, error) {
	switch {
	case strings.HasSuffix(s, "ms"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "ms"), 64)
		return sim.Time(v * float64(sim.Millisecond)), err
	case strings.HasSuffix(s, "us"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "us"), 64)
		return sim.Time(v * float64(sim.Microsecond)), err
	case strings.HasSuffix(s, "s"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "s"), 64)
		return sim.Time(v * float64(sim.Second)), err
	}
	return 0, fmt.Errorf("duration needs a unit (s/ms/us): %q", s)
}

func main() {
	app := flag.String("accel", "MB", "accelerator (Table 1 abbreviation)")
	jobs := flag.Int("jobs", 1, "number of concurrent jobs")
	temporal := flag.Bool("temporal", false, "multiplex all jobs on ONE physical accelerator (default: one slot each)")
	ws := flag.String("ws", "32M", "per-job working set / input size")
	durFlag := flag.String("duration", "5ms", "simulated measurement window")
	pages := flag.String("pages", "2m", "page size: 2m or 4k")
	sliceFlag := flag.String("slice", "10ms", "temporal multiplexing time slice")
	policy := flag.String("policy", "rr", "temporal scheduler: rr, wrr, prio")
	passthrough := flag.Bool("passthrough", false, "pass-through baseline instead of OPTIMUS")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file (open in ui.perfetto.dev)")
	metrics := flag.Bool("metrics", false, "dump the unified metrics snapshot after the run")
	chaosSpec := flag.String("chaos", "", "seeded fault injection, e.g. seed=7,rate=10000 (keys: seed,rate,xlat,corrupt,drop,dup,pin,retries; rates in ppm)")
	loadSpec := flag.String("load", "", "open-loop serving: arrival spec, e.g. kind=poisson,rate=15000 (keys: kind=poisson|bursty|trace, rate, on, off, file, seed, qcap, batch, bursts, policy=droptail|token, tokrate, tokburst)")
	sloFlag := flag.String("slo", "", "serving SLO latency target, e.g. 500us (requires -load; arms exact violation counting)")
	var tel telemetry
	flag.StringVar(&tel.timeseries, "timeseries", "", "write a windowed metric time-series JSON artifact to this file")
	flag.StringVar(&tel.window, "tswindow", "100us", "time-series sampling window (simulated time)")
	flag.BoolVar(&tel.profile, "profile", false, "print the per-actor sim-time utilization report after the run")
	flag.BoolVar(&tel.critpath, "critpath", false, "print the request critical-path analysis after the run")
	flag.Parse()

	if err := run(*app, *jobs, *temporal, *ws, *durFlag, *pages, *sliceFlag, *policy, *passthrough, *traceOut, *metrics, *chaosSpec, *loadSpec, *sloFlag, tel); err != nil {
		fmt.Fprintln(os.Stderr, "optimus-sim:", err)
		os.Exit(1)
	}
}

// telemetry groups the sim-time telemetry-engine flags: time-series
// sampler, utilization profiler, critical-path analyzer.
type telemetry struct {
	timeseries string
	window     string
	profile    bool
	critpath   bool
}

// loadConfig is the parsed -load/-slo serving setup: the per-tenant stream
// template plus the MB bursts each request costs.
type loadConfig struct {
	stream load.StreamConfig
	bursts uint64
}

// parseLoadSpec parses the -load key=value spec into a stream template.
// Per-tenant names and seed offsets are applied at stream creation.
func parseLoadSpec(spec, sloFlag string) (*loadConfig, error) {
	lc := &loadConfig{
		stream: load.StreamConfig{
			Arrivals: load.ArrivalSpec{Kind: load.Poisson, RatePerSec: 10000, MeanOn: 2 * sim.Millisecond, MeanOff: 6 * sim.Millisecond},
			Seed:     1,
			QueueCap: 256,
			BatchMax: 4,
		},
		bursts: 64,
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("-load: want key=value, got %q", kv)
		}
		var err error
		switch k {
		case "kind":
			switch v {
			case "poisson":
				lc.stream.Arrivals.Kind = load.Poisson
			case "bursty":
				lc.stream.Arrivals.Kind = load.Bursty
			case "trace":
				lc.stream.Arrivals.Kind = load.Trace
			default:
				return nil, fmt.Errorf("-load: unknown kind %q (poisson, bursty, trace)", v)
			}
		case "rate":
			lc.stream.Arrivals.RatePerSec, err = strconv.ParseFloat(v, 64)
		case "on":
			lc.stream.Arrivals.MeanOn, err = parseDuration(v)
		case "off":
			lc.stream.Arrivals.MeanOff, err = parseDuration(v)
		case "file":
			lc.stream.Arrivals.Trace, err = readTrace(v)
		case "seed":
			lc.stream.Seed, err = strconv.ParseUint(v, 10, 64)
		case "qcap":
			lc.stream.QueueCap, err = strconv.Atoi(v)
		case "batch":
			lc.stream.BatchMax, err = strconv.Atoi(v)
		case "bursts":
			lc.bursts, err = strconv.ParseUint(v, 10, 64)
		case "policy":
			switch v {
			case "droptail":
				lc.stream.Policy = load.DropTail
			case "token":
				lc.stream.Policy = load.TokenBucket
			default:
				return nil, fmt.Errorf("-load: unknown policy %q (droptail, token)", v)
			}
		case "tokrate":
			lc.stream.TokenRatePerSec, err = strconv.ParseFloat(v, 64)
		case "tokburst":
			lc.stream.TokenBurst, err = strconv.ParseFloat(v, 64)
		default:
			return nil, fmt.Errorf("-load: unknown key %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("-load: %s: %w", k, err)
		}
	}
	if lc.stream.Arrivals.Kind == load.Trace && len(lc.stream.Arrivals.Trace) == 0 {
		return nil, fmt.Errorf("-load: kind=trace needs file=<trace.json> (emit one with optimus-synth -load)")
	}
	if lc.stream.Policy == load.TokenBucket && lc.stream.TokenRatePerSec <= 0 {
		return nil, fmt.Errorf("-load: policy=token needs tokrate=<req/s>")
	}
	if sloFlag != "" {
		slo, err := parseDuration(sloFlag)
		if err != nil {
			return nil, fmt.Errorf("-slo: %w", err)
		}
		lc.stream.SLO = slo
	}
	return lc, nil
}

// readTrace loads an arrival-trace artifact (optimus-synth -load): JSON with
// an ascending times_ns array.
func readTrace(path string) ([]sim.Time, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var art struct {
		TimesNs []int64 `json:"times_ns"`
	}
	if err := json.Unmarshal(buf, &art); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make([]sim.Time, len(art.TimesNs))
	for i, ns := range art.TimesNs {
		out[i] = sim.Time(ns) * sim.Nanosecond
	}
	return out, nil
}

// loadWorker adapts one tenant's guest device to the traffic engine: a batch
// of n requests becomes one MB run of bursts*n memory bursts.
type loadWorker struct {
	dev    *guest.Device
	bursts uint64
	done   func(failed bool)
	onDone func()
}

func (w *loadWorker) Bind(done func(failed bool)) {
	w.done = done
	w.onDone = func() { w.done(w.dev.VAccel().Failed() != nil) }
}

func (w *loadWorker) Launch(n int) error {
	w.dev.RegWrite(accel.MBArgBursts, w.bursts*uint64(n))
	if err := w.dev.Start(); err != nil {
		return err
	}
	w.dev.OnDone(w.onDone)
	return nil
}

func run(app string, jobs int, temporal bool, wsFlag, durFlag, pages, sliceFlag, policy string, passthrough bool, traceOut string, metrics bool, chaosSpec, loadSpec, sloFlag string, tel telemetry) error {
	wsBytes, err := parseBytes(wsFlag)
	if err != nil {
		return err
	}
	duration, err := parseDuration(durFlag)
	if err != nil {
		return err
	}
	var lc *loadConfig
	if loadSpec != "" {
		if app != "MB" {
			return fmt.Errorf("-load drives the MB serving scenario (got -accel %s)", app)
		}
		if passthrough {
			return fmt.Errorf("-load and -passthrough are incompatible")
		}
		lc, err = parseLoadSpec(loadSpec, sloFlag)
		if err != nil {
			return err
		}
	} else if sloFlag != "" {
		return fmt.Errorf("-slo requires -load")
	}
	slice, err := parseDuration(sliceFlag)
	if err != nil {
		return err
	}
	pageSize := uint64(mem.PageSize2M)
	if strings.EqualFold(pages, "4k") {
		pageSize = mem.PageSize4K
	}

	nPhys := jobs
	if temporal {
		nPhys = 1
	}
	if nPhys > 8 {
		return fmt.Errorf("at most 8 physical accelerators (got %d); use -temporal for more jobs", nPhys)
	}
	accels := make([]string, nPhys)
	for i := range accels {
		accels[i] = app
	}
	cfg := hv.Config{Accels: accels, PageSize: pageSize, TimeSlice: slice}
	if passthrough {
		cfg.Mode = hv.ModePassThrough
		if jobs > 1 {
			return fmt.Errorf("pass-through supports a single job")
		}
	}
	if traceOut != "" || tel.profile || tel.critpath {
		cfg.Trace = obs.NewTracer(0)
	}
	cfg.Profile = tel.profile
	if chaosSpec != "" {
		ccfg, err := chaos.ParseSpec(chaosSpec)
		if err != nil {
			return err
		}
		cfg.Chaos = &ccfg
	}
	var reg *obs.Registry
	if metrics || tel.timeseries != "" {
		reg = obs.NewRegistry()
		cfg.Metrics = reg
	}
	if tel.timeseries != "" {
		w, err := parseDuration(tel.window)
		if err != nil {
			return fmt.Errorf("-tswindow: %w", err)
		}
		cfg.Sample = &obs.SampleConfig{Window: w}
	}
	h, err := hv.New(cfg)
	if err != nil {
		return err
	}
	if temporal {
		switch policy {
		case "rr":
		case "wrr":
			h.Scheduler(0).SetPolicy(hv.PolicyWRR)
		case "prio":
			h.Scheduler(0).SetPolicy(hv.PolicyPriority)
		default:
			return fmt.Errorf("unknown policy %q", policy)
		}
	}

	type tenantState struct {
		vm  *hv.VM
		dev *guest.Device
	}
	tenants := make([]tenantState, jobs)
	for i := 0; i < jobs; i++ {
		slot := i
		if temporal {
			slot = 0
		}
		vm, err := h.NewVM(fmt.Sprintf("vm%d", i), 10<<30)
		if err != nil {
			return err
		}
		proc := vm.NewProcess()
		va, err := h.NewVAccel(proc, slot)
		if err != nil {
			return err
		}
		if temporal {
			va.SetWeight(1 + i%3)
			va.SetPriority(i)
		}
		dev, err := guest.Open(proc, va)
		if err != nil {
			return err
		}
		tenants[i] = tenantState{vm: vm, dev: dev}
		buf, err := dev.AllocDMA(wsBytes)
		if err != nil {
			return err
		}
		if _, err := dev.SetupStateBuffer(); err != nil {
			return err
		}
		switch app {
		case "MB":
			dev.RegWrite(accel.MBArgBase, uint64(buf.Addr))
			dev.RegWrite(accel.MBArgSize, wsBytes)
			dev.RegWrite(accel.MBArgBursts, 0)
			dev.RegWrite(accel.MBArgWritePct, 30)
			dev.RegWrite(accel.MBArgSeed, uint64(i))
		case "LL":
			nodes := int(wsBytes / 256)
			head := buildList(dev, proc, buf, nodes, uint64(i))
			dev.RegWrite(accel.LLArgHead, head)
		default:
			return fmt.Errorf("optimus-sim drives MB and LL scenarios; use optimus-bench for the application suites")
		}
		// In serving mode the traffic engine launches the device per batch;
		// closed-loop mode starts one continuous job now.
		if lc == nil {
			if err := dev.Start(); err != nil {
				return err
			}
		}
	}

	var eng *load.Engine
	if lc != nil {
		eng = load.NewEngine(h.K, sim.Millisecond, h.K.Now()+duration)
		for i, tn := range tenants {
			cfg := lc.stream
			cfg.Name = fmt.Sprintf("t%d", i)
			cfg.Seed = lc.stream.Seed + uint64(i)*0x9e3779b9
			st := eng.AddStream(cfg)
			st.AddWorker(&loadWorker{dev: tn.dev, bursts: lc.bursts})
			st.SetTrace(h.Trace(), obs.VM(tn.vm.ID))
		}
		if reg != nil {
			eng.RegisterMetrics(reg)
		}
		eng.Attach()
		// Past the horizon, run on so in-flight and queued requests drain.
		h.K.RunFor(duration + 10*sim.Millisecond)
	} else {
		h.K.RunFor(duration)
	}

	fmt.Printf("scenario: %s x%d (%s), ws=%s, pages=%s, %v window\n",
		app, jobs, map[bool]string{true: "temporal", false: "spatial"}[temporal], wsFlag, pages, duration)
	if eng != nil {
		secs := float64(duration) / float64(sim.Second)
		for _, st := range eng.Streams() {
			fmt.Printf("  %s: offered=%d (%.0f/s) admitted=%d dropped=%d completed=%d failed=%d batches=%d\n",
				st.Name(), st.Offered(), float64(st.Offered())/secs,
				st.Admitted(), st.Dropped(), st.Completed(), st.Failed(), st.Batches())
			lat := st.Latency()
			if lat.Count() > 0 {
				pc := lat.Percentiles(50, 99, 99.9)
				us := func(t sim.Time) float64 { return float64(t) / float64(sim.Microsecond) }
				fmt.Printf("  %s: latency p50=%.1fus p99=%.1fus p999=%.1fus max=%.1fus\n",
					st.Name(), us(pc[0]), us(pc[1]), us(pc[2]), us(lat.Max()))
			}
			if lc.stream.SLO > 0 && st.Offered() > 0 {
				viol := lat.ViolationsAbove(lc.stream.SLO) + st.Dropped() + st.Failed()
				fmt.Printf("  %s: slo=%v violations=%d (%.2f%% of offered)\n",
					st.Name(), lc.stream.SLO, viol, 100*float64(viol)/float64(st.Offered()))
			}
		}
	} else {
		var totalWork float64
		for i, tn := range tenants {
			va := tn.dev.VAccel()
			work := va.WorkDone()
			totalWork += float64(work)
			fmt.Printf("  job %d: work=%d runtime=%v scheduled=%v\n", i, work, va.Runtime(), va.Scheduled())
		}
	}
	st := h.Shell.Stats()
	fmt.Printf("shell: read %.2f GB/s, write %.2f GB/s, faults=%d\n",
		sim.Throughput(st.BytesRead, duration), sim.Throughput(st.BytesWritten, duration), st.Faults)
	io := h.Shell.IOMMU.Stats()
	fmt.Printf("iotlb: hits=%d misses=%d spec=%d evictions=%d (hit rate %.3f)\n",
		io.Hits, io.Misses, io.SpecHits, io.Evictions, io.HitRate())
	if h.Monitor != nil {
		ms := h.Monitor.Stats()
		fmt.Printf("monitor: dma=%d dropped=%d rangeViolations=%d resets=%d\n",
			ms.DMARequests, ms.DMADropped, ms.RangeViolations, ms.Resets)
	}
	hs := h.Stats()
	fmt.Printf("hypervisor: traps=%d hypercalls=%d switches=%d forcedResets=%d quarantines=%d pinned=%d\n",
		hs.MMIOTraps, hs.Hypercalls, hs.ContextSwitches, hs.ForcedResets, hs.Quarantines, hs.PagesPinned)
	if p := h.Chaos(); p != nil {
		cs := p.Stats()
		fmt.Printf("chaos: injected=%d (xlat=%d corrupt=%d drop=%d dup=%d pin=%d) recovered=%d exhausted=%d\n",
			cs.TotalInjected(), cs.Injected[chaos.ClassXlat], cs.Injected[chaos.ClassCorrupt],
			cs.Injected[chaos.ClassDrop], cs.Injected[chaos.ClassDup], cs.Injected[chaos.ClassPin],
			cs.Recovered, cs.Exhausted)
		fmt.Printf("chaos: xlatRetries=%d retransmits=%d dupsSuppressed=%d pinRetries=%d\n",
			cs.XlatRetries, cs.Retransmits, cs.DupsSuppressed, cs.PinRetries)
		if rec := p.Recovery(); rec.Count() > 0 {
			pc := rec.Percentiles(50, 95, 99)
			fmt.Printf("chaos: recovery latency p50=%v p95=%v p99=%v (%d recoveries)\n",
				pc[0], pc[1], pc[2], rec.Count())
		}
	}
	if reg != nil && metrics {
		fmt.Println("metrics:")
		if err := reg.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if tel.profile {
		fmt.Println("profile:")
		if err := h.Profiler().WriteReport(os.Stdout); err != nil {
			return err
		}
	}
	if tel.critpath {
		fmt.Println("critpath:")
		if err := obs.AnalyzeCritPath(h.Trace().Records()).WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if tel.timeseries != "" {
		f, err := os.Create(tel.timeseries)
		if err != nil {
			return err
		}
		s := h.Sampler()
		if err := s.WriteJSON(f, strings.Join(accels, "+")); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("timeseries: %d windows of %v -> %s\n", s.Windows(), s.Window(), tel.timeseries)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		tr := h.Trace()
		if err := tr.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %d events (%d dropped by ring wrap) -> %s (open in ui.perfetto.dev)\n",
			tr.Len(), tr.Dropped(), traceOut)
	}
	return nil
}

func buildList(dev *guest.Device, proc *hv.Process, buf guest.Buffer, n int, seed uint64) uint64 {
	if n < 2 {
		n = 2
	}
	rng := sim.NewRand(seed ^ 0x515)
	slots := int(buf.Size / 64)
	if n > slots {
		n = slots
	}
	order := rng.Perm(slots)[:n]
	addrs := make([]uint64, n)
	for i, s := range order {
		addrs[i] = uint64(buf.Addr) + uint64(s)*64
	}
	for i := 0; i < n; i++ {
		node := make([]byte, 64)
		var next uint64
		if i+1 < n {
			next = addrs[i+1]
		}
		for b := 0; b < 8; b++ {
			node[b] = byte(next >> (8 * b))
		}
		proc.Write(mem.GVA(addrs[i]), node)
	}
	return addrs[0]
}
