// Command optimus-bench regenerates the paper's evaluation artifacts: one
// experiment per table and figure of §6 (plus extensions). Run with no
// arguments to list experiments.
//
// Usage:
//
//	optimus-bench -exp fig1 [-full]
//	optimus-bench -exp all -full
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"optimus/internal/exp"
)

func main() {
	expID := flag.String("exp", "", "experiment to run (or 'all')")
	full := flag.Bool("full", false, "run at full (paper-sized) scale instead of quick scale")
	flag.Parse()

	scale := exp.ScaleQuick
	if *full {
		scale = exp.ScaleFull
	}

	if *expID == "" {
		fmt.Println("available experiments:")
		for _, id := range exp.IDs() {
			fmt.Println("  ", id)
		}
		fmt.Println("   all")
		return
	}

	ids := []string{*expID}
	if *expID == "all" {
		ids = exp.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		if err := exp.Run(id, scale, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "optimus-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v wall time)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
