// Command optimus-bench regenerates the paper's evaluation artifacts: one
// experiment per table and figure of §6 (plus extensions). Run with no
// arguments to list experiments.
//
// Usage:
//
//	optimus-bench -exp fig1 [-full]
//	optimus-bench -exp all -full
//	optimus-bench -exp all -par 8 -json BENCH_exp.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"optimus/internal/chaos"
	"optimus/internal/exp"
	"optimus/internal/hv"
	"optimus/internal/obs"
	"optimus/internal/sim"
)

// expRecord is one experiment's perf sample in the -json artifact; the
// sequence of artifacts across commits is the simulator's performance
// trajectory.
type expRecord struct {
	Exp          string  `json:"exp"`
	WallMS       float64 `json:"wall_ms"`
	Events       uint64  `json:"events_executed"`
	EventsPerSec float64 `json:"events_per_sec"`
	// SetupMS is wall time spent in setup-dominated harness regions
	// (platform assembly, tenant provisioning, warm-platform cloning) as
	// reported by exp's setup observer; SteadyMS is the remainder — the
	// measured simulation itself. The split is exact at -par 1; with
	// parallel workers setup regions can overlap and the split is
	// approximate.
	SetupMS  float64 `json:"setup_wall_ms"`
	SteadyMS float64 `json:"steady_wall_ms"`
	// CloneMS is the wall time spent inside hv.Clone (a sub-region of
	// SetupMS). ResidentBytes/SharedBytes are the cumulative backing-store
	// bytes of every platform the experiment acquired, sampled when the
	// platform is handed to the point: SharedBytes over ResidentBytes is
	// the fraction of memory copy-on-write cloning shared instead of
	// copying (see exp.MemCounters). cmd/perfdiff gates on ResidentBytes
	// regressions.
	CloneMS       float64 `json:"clone_wall_ms"`
	ResidentBytes uint64  `json:"resident_bytes"`
	SharedBytes   uint64  `json:"shared_bytes"`
	// PABusyPct/PAStallPct aggregate the utilization profiler's accelerator
	// lanes across every platform the experiment built (Σbusy over Σhorizon):
	// the simulated-time fraction the accelerators spent doing work vs.
	// saving/loading preemption state. Present only with -profile;
	// cmd/perfdiff reports shifts as behavior-change signals (not gated).
	PABusyPct  float64 `json:"pa_busy_pct,omitempty"`
	PAStallPct float64 `json:"pa_stall_pct,omitempty"`
	// Serving fields, present only for the serve experiment: aggregate
	// offered and completed request rates (per simulated second), the
	// bursty tenant's p999, and the SLO violation percentage, all at the
	// highest offered load in elastic mode (exp.ServeSummary). perfdiff
	// reports latency-curve shifts as behavior-change signals (not gated).
	OfferedLoad     float64 `json:"offered_load,omitempty"`
	AchievedGoodput float64 `json:"achieved_goodput,omitempty"`
	P999NS          uint64  `json:"p999_ns,omitempty"`
	SLOViolationPct float64 `json:"slo_violation_pct,omitempty"`
}

type benchArtifact struct {
	Scale      string      `json:"scale"`
	Par        int         `json:"par"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	CoW        bool        `json:"cow"`
	TotalMS    float64     `json:"total_wall_ms"`
	Records    []expRecord `json:"experiments"`
}

func main() {
	expID := flag.String("exp", "", "experiment to run (or 'all')")
	full := flag.Bool("full", false, "run at full (paper-sized) scale instead of quick scale")
	par := flag.Int("par", runtime.GOMAXPROCS(0),
		"sweep points to run concurrently (1 = sequential)")
	jsonPath := flag.String("json", "", "write a machine-readable perf artifact (wall time, events/sec per experiment) to this path")
	traceOut := flag.String("trace", "", "write every sweep platform's trace as one Chrome trace-event JSON file (open in ui.perfetto.dev)")
	traceCap := flag.Int("trace-cap", 8192, "per-platform trace ring capacity in records (with -trace)")
	metrics := flag.Bool("metrics", false, "dump every sweep platform's metrics snapshot after the run")
	chaosSpec := flag.String("chaos", "", "arm seeded fault injection on every sweep platform, e.g. seed=7,rate=10000 (keys: seed,rate,xlat,corrupt,drop,dup,pin,retries; rates in ppm)")
	cloneFlag := flag.Bool("clone", true, "warm-platform cloning: provision one template per sweep configuration and clone it per point (results are byte-identical either way)")
	cowFlag := flag.Bool("cow", true, "copy-on-write frame sharing for warm-platform clones; -cow=false deep-copies every resident frame (results are byte-identical either way)")
	tsOut := flag.String("timeseries", "", "write every sweep platform's windowed metric time-series as one JSON artifact to this path")
	tsWindow := flag.Duration("tswindow", 100*time.Microsecond, "time-series sampling window, in simulated time")
	profileFlag := flag.Bool("profile", false, "dump every sweep platform's per-actor sim-time utilization report after the run")
	critFlag := flag.Bool("critpath", false, "dump every sweep platform's request critical-path analysis after the run (needs trace rings; combine with -trace-cap)")
	sloOut := flag.String("slo", "", "write the serve experiment's SLO-curve artifact (per-point, per-tenant latency percentiles and violation rates) as JSON to this path (requires -exp serve or all)")
	flag.Parse()

	exp.SetCloning(*cloneFlag)
	hv.SetCloneCoW(*cowFlag)
	// The deterministic wall bans wall-clock reads inside experiment code,
	// so the setup/steady split is measured here: exp brackets its
	// setup-dominated regions through this observer. cloneNS isolates the
	// hv.Clone calls within setup, giving the artifact its clone_wall_ms.
	var setupNS, cloneNS atomic.Int64
	exp.SetSetupObserver(func() func() {
		t0 := time.Now()
		return func() { setupNS.Add(int64(time.Since(t0))) }
	})
	exp.SetCloneObserver(func() func() {
		t0 := time.Now()
		return func() { cloneNS.Add(int64(time.Since(t0))) }
	})

	if *chaosSpec != "" {
		ccfg, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "optimus-bench:", err)
			os.Exit(1)
		}
		hv.ChaosAll(&ccfg)
	}

	scale := exp.ScaleQuick
	scaleName := "quick"
	if *full {
		scale = exp.ScaleFull
		scaleName = "full"
	}

	if *expID == "" {
		fmt.Println("available experiments:")
		for _, id := range exp.IDs() {
			fmt.Println("  ", id)
		}
		fmt.Println("   all")
		return
	}

	ids := []string{*expID}
	if *expID == "all" {
		ids = exp.IDs()
	}
	exp.SetParallelism(*par)

	// Experiments assemble their platforms deep inside figure code, so
	// observability is collected through hv's auto-observe hook: each platform
	// gets a private tracer (bounded ring — sweeps build many platforms) and
	// metrics registry, gathered into one collector.
	var coll *obs.Collector
	if *traceOut != "" || *metrics || *tsOut != "" || *profileFlag || *critFlag {
		coll = obs.NewCollector()
		ringCap := *traceCap
		if *traceOut == "" && !*critFlag && !*profileFlag {
			// No trace consumer: skip the rings. The profiler counts as a
			// consumer — it is fed from the tracer's emit stream.
			ringCap = -1
		}
		hv.ObserveAll(coll, ringCap)
		if *tsOut != "" {
			hv.SampleAll(&obs.SampleConfig{Window: sim.Time(tsWindow.Nanoseconds()) * sim.Nanosecond})
		}
		if *profileFlag {
			hv.ProfileAll(true)
		}
	}
	art := benchArtifact{Scale: scaleName, Par: exp.Parallelism(), GOMAXPROCS: runtime.GOMAXPROCS(0), CoW: *cowFlag}
	suiteStart := time.Now()
	for _, id := range ids {
		start := time.Now()
		platsBefore := 0
		if coll != nil {
			platsBefore = len(coll.Platforms())
		}
		eventsBefore := sim.EventsExecuted()
		setupBefore := setupNS.Load()
		cloneBefore := cloneNS.Load()
		residentBefore, sharedBefore := exp.MemCounters()
		if err := exp.Run(id, scale, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "optimus-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		wall := time.Since(start)
		events := sim.EventsExecuted() - eventsBefore
		setup := time.Duration(setupNS.Load() - setupBefore)
		if setup > wall {
			setup = wall
		}
		clone := time.Duration(cloneNS.Load() - cloneBefore)
		if clone > setup {
			clone = setup
		}
		resident, shared := exp.MemCounters()
		resident -= residentBefore
		shared -= sharedBefore
		fmt.Printf("(%s completed in %v wall time [%v setup, %v clone], %d events, %.3g events/sec)\n\n",
			id, wall.Round(time.Millisecond), setup.Round(time.Millisecond),
			clone.Round(time.Millisecond), events, float64(events)/wall.Seconds())
		rec := expRecord{
			Exp:           id,
			WallMS:        float64(wall.Nanoseconds()) / 1e6,
			Events:        events,
			EventsPerSec:  float64(events) / wall.Seconds(),
			SetupMS:       float64(setup.Nanoseconds()) / 1e6,
			SteadyMS:      float64((wall - setup).Nanoseconds()) / 1e6,
			CloneMS:       float64(clone.Nanoseconds()) / 1e6,
			ResidentBytes: resident,
			SharedBytes:   shared,
		}
		if coll != nil && *profileFlag {
			rec.PABusyPct, rec.PAStallPct = paUtil(coll.Platforms()[platsBefore:])
		}
		if id == "serve" {
			if off, good, p999, viol, ok := exp.ServeSummary(); ok {
				rec.OfferedLoad, rec.AchievedGoodput = off, good
				rec.P999NS, rec.SLOViolationPct = p999, viol
			}
		}
		art.Records = append(art.Records, rec)
	}
	art.TotalMS = float64(time.Since(suiteStart).Nanoseconds()) / 1e6

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "optimus-bench: encoding %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "optimus-bench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote perf artifact to %s\n", *jsonPath)
	}

	if *sloOut != "" {
		f, err := os.Create(*sloOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "optimus-bench: %v\n", err)
			os.Exit(1)
		}
		if err := exp.WriteServeJSON(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "optimus-bench: writing %s: %v\n", *sloOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote SLO-curve artifact to %s\n", *sloOut)
	}

	if *metrics {
		if err := coll.WriteMetrics(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "optimus-bench: metrics: %v\n", err)
			os.Exit(1)
		}
	}
	if *profileFlag {
		if err := coll.WriteProfiles(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "optimus-bench: profile: %v\n", err)
			os.Exit(1)
		}
	}
	if *critFlag {
		if err := coll.WriteCritPaths(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "optimus-bench: critpath: %v\n", err)
			os.Exit(1)
		}
	}
	if *tsOut != "" {
		f, err := os.Create(*tsOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "optimus-bench: %v\n", err)
			os.Exit(1)
		}
		if err := coll.WriteTimeseries(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "optimus-bench: writing %s: %v\n", *tsOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote time-series of %d platforms to %s\n", len(coll.Platforms()), *tsOut)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "optimus-bench: %v\n", err)
			os.Exit(1)
		}
		if err := coll.WriteChromeTrace(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "optimus-bench: writing %s: %v\n", *traceOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote trace of %d platforms to %s (open in ui.perfetto.dev)\n",
			len(coll.Platforms()), *traceOut)
	}
}

// paUtil aggregates accelerator-lane utilization across a slice of profiled
// platforms: Σbusy and Σstall over Σ(horizon per PA lane), as percentages.
func paUtil(plats []obs.PlatformObs) (busyPct, stallPct float64) {
	var busy, stall, denom sim.Time
	for _, p := range plats {
		if p.Profile == nil {
			continue
		}
		horizon := p.Profile.Horizon()
		for _, u := range p.Profile.Utilization() {
			if u.Actor.Class() == obs.ClassPA {
				busy += u.Busy
				stall += u.Stall
				denom += horizon
			}
		}
	}
	if denom == 0 {
		return 0, 0
	}
	return 100 * float64(busy) / float64(denom), 100 * float64(stall) / float64(denom)
}
