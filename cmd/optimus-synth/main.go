// Command optimus-synth reports the FPGA synthesis model's utilization and
// timing feasibility for a chosen accelerator configuration — the
// simulated counterpart of the Quartus reports behind Table 2.
//
// Usage:
//
//	optimus-synth -apps AES,AES,MB -monitor -arity 2
//	optimus-synth -apps MB -n 8 -flat
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"optimus/internal/fpga"
)

func main() {
	appsFlag := flag.String("apps", "AES", "comma-separated accelerator names (Table 1 abbreviations)")
	n := flag.Int("n", 0, "replicate the first app n times (overrides -apps list length)")
	monitor := flag.Bool("monitor", true, "include the OPTIMUS hardware monitor")
	flat := flag.Bool("flat", false, "use a flat multiplexer instead of a tree")
	arity := flag.Int("arity", 2, "multiplexer tree arity")
	target := flag.Int("mhz", 400, "target multiplexer clock (MHz)")
	flag.Parse()

	apps := strings.Split(*appsFlag, ",")
	if *n > 0 {
		base := apps[0]
		apps = make([]string, *n)
		for i := range apps {
			apps[i] = base
		}
	}
	rep, err := fpga.Synthesize(fpga.Arria10(), fpga.SynthConfig{
		Apps:        apps,
		WithMonitor: *monitor,
		Mux:         fpga.MuxTopology{Arity: *arity, Flat: *flat},
		TargetMHz:   *target,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "optimus-synth:", err)
		os.Exit(1)
	}
	fmt.Printf("Device: %s (%d ALMs, %d M20K)\n", rep.Device.Name, rep.Device.ALMs, rep.Device.BRAMBlocks)
	fmt.Printf("%-20s %10s %10s\n", "Component", "ALM %", "BRAM %")
	for _, c := range rep.Components {
		fmt.Printf("%-20s %10.2f %10.2f\n", c.Name, c.ALMPct, c.BRAMPct)
	}
	fmt.Printf("%-20s %10.2f %10.2f\n", "TOTAL", rep.TotalALM, rep.TotalBRAM)
	fmt.Printf("Mux levels: %d\n", rep.MuxLevels)
	if rep.TimingMet {
		fmt.Printf("Timing at %d MHz: MET\n", *target)
	} else {
		fmt.Printf("Timing at %d MHz: FAILED — %s\n", *target, rep.TimingNote)
		os.Exit(2)
	}
}
