// Command optimus-synth reports the FPGA synthesis model's utilization and
// timing feasibility for a chosen accelerator configuration — the
// simulated counterpart of the Quartus reports behind Table 2.
//
// With -load it instead emits a diurnal arrival-trace artifact for the
// open-loop traffic engine: a JSON timeline that optimus-sim replays via
// -load kind=trace,file=<out>.
//
// Usage:
//
//	optimus-synth -apps AES,AES,MB -monitor -arity 2
//	optimus-synth -apps MB -n 8 -flat
//	optimus-synth -load day.json -rate 20000 -span 80ms -peak 4 -cycles 2 -seed 42
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"optimus/internal/fpga"
	"optimus/internal/load"
	"optimus/internal/sim"
)

func main() {
	appsFlag := flag.String("apps", "AES", "comma-separated accelerator names (Table 1 abbreviations)")
	n := flag.Int("n", 0, "replicate the first app n times (overrides -apps list length)")
	monitor := flag.Bool("monitor", true, "include the OPTIMUS hardware monitor")
	flat := flag.Bool("flat", false, "use a flat multiplexer instead of a tree")
	arity := flag.Int("arity", 2, "multiplexer tree arity")
	target := flag.Int("mhz", 400, "target multiplexer clock (MHz)")
	loadOut := flag.String("load", "", "emit a diurnal arrival-trace JSON artifact to this file instead of synthesizing")
	rate := flag.Float64("rate", 20000, "trace mean arrival rate (req/s of simulated time)")
	span := flag.String("span", "80ms", "trace duration (simulated time, e.g. 80ms)")
	peak := flag.Float64("peak", 4, "trace peak:trough rate ratio (>= 1)")
	cycles := flag.Int("cycles", 2, "diurnal cycles across the trace span")
	seed := flag.Uint64("seed", 1, "trace generation seed (same seed, same timeline)")
	flag.Parse()

	if *loadOut != "" {
		if err := emitTrace(*loadOut, *seed, *span, *rate, *peak, *cycles); err != nil {
			fmt.Fprintln(os.Stderr, "optimus-synth:", err)
			os.Exit(1)
		}
		return
	}

	apps := strings.Split(*appsFlag, ",")
	if *n > 0 {
		base := apps[0]
		apps = make([]string, *n)
		for i := range apps {
			apps[i] = base
		}
	}
	rep, err := fpga.Synthesize(fpga.Arria10(), fpga.SynthConfig{
		Apps:        apps,
		WithMonitor: *monitor,
		Mux:         fpga.MuxTopology{Arity: *arity, Flat: *flat},
		TargetMHz:   *target,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "optimus-synth:", err)
		os.Exit(1)
	}
	fmt.Printf("Device: %s (%d ALMs, %d M20K)\n", rep.Device.Name, rep.Device.ALMs, rep.Device.BRAMBlocks)
	fmt.Printf("%-20s %10s %10s\n", "Component", "ALM %", "BRAM %")
	for _, c := range rep.Components {
		fmt.Printf("%-20s %10.2f %10.2f\n", c.Name, c.ALMPct, c.BRAMPct)
	}
	fmt.Printf("%-20s %10.2f %10.2f\n", "TOTAL", rep.TotalALM, rep.TotalBRAM)
	fmt.Printf("Mux levels: %d\n", rep.MuxLevels)
	if rep.TimingMet {
		fmt.Printf("Timing at %d MHz: MET\n", *target)
	} else {
		fmt.Printf("Timing at %d MHz: FAILED — %s\n", *target, rep.TimingNote)
		os.Exit(2)
	}
}

// emitTrace generates a load.DiurnalTrace timeline and writes the artifact
// optimus-sim's -load kind=trace,file= mode reads.
func emitTrace(path string, seed uint64, spanFlag string, rate, peak float64, cycles int) error {
	span, err := parseDuration(spanFlag)
	if err != nil {
		return fmt.Errorf("-span: %w", err)
	}
	times := load.DiurnalTrace(seed, span, rate, peak, cycles)
	art := struct {
		Seed       uint64  `json:"seed"`
		DurationNs int64   `json:"duration_ns"`
		RatePerSec float64 `json:"mean_rate_per_sec"`
		PeakFactor float64 `json:"peak_factor"`
		Cycles     int     `json:"cycles"`
		TimesNs    []int64 `json:"times_ns"`
	}{
		Seed:       seed,
		DurationNs: int64(span / sim.Nanosecond),
		RatePerSec: rate,
		PeakFactor: peak,
		Cycles:     cycles,
		TimesNs:    make([]int64, len(times)),
	}
	for i, t := range times {
		art.TimesNs[i] = int64(t / sim.Nanosecond)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(&art); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("trace: %d arrivals over %v (mean %.0f/s, peak factor %.1f, %d cycles, seed %d) -> %s\n",
		len(times), span, rate, peak, cycles, seed, path)
	return nil
}

// parseDuration parses a simulated duration with an s/ms/us unit suffix.
func parseDuration(s string) (sim.Time, error) {
	switch {
	case strings.HasSuffix(s, "ms"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "ms"), 64)
		return sim.Time(v * float64(sim.Millisecond)), err
	case strings.HasSuffix(s, "us"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "us"), 64)
		return sim.Time(v * float64(sim.Microsecond)), err
	case strings.HasSuffix(s, "s"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "s"), 64)
		return sim.Time(v * float64(sim.Second)), err
	}
	return 0, fmt.Errorf("duration needs a unit (s/ms/us): %q", s)
}
